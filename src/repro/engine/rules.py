"""Optimizer rewrite rules, each individually switchable.

The SCOPE optimizer has 256 on/off rules (Section 4.2); Bao steers 48.
We model the same mechanism at a tractable scale: a catalog of rewrite
rules, each a deterministic bottom-up transformation guarded by a config
bit.  Some rules are unconditionally safe improvements (filter merging,
pushdown); others (join commutation, early aggregation) are *cost-based
gambles* whose payoff depends on cardinality estimates being right —
exactly the rules worth steering per-job.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.engine.catalog import Catalog
from repro.engine.estimator import CardinalityModel
from repro.engine.expr import (
    Aggregate,
    Expression,
    Filter,
    Join,
    Predicate,
    Project,
    Union,
)


@dataclass
class RuleContext:
    """Everything a rule may consult when rewriting a node."""

    catalog: Catalog
    cardinality: CardinalityModel


@dataclass(frozen=True)
class Rule:
    """A switchable rewrite: ``apply`` receives a node with rewritten children."""

    rule_id: int
    name: str
    apply: Callable[[Expression, RuleContext], Expression]
    risky: bool = False  # depends on estimates being accurate


# -- helpers ---------------------------------------------------------------


def _owned_by(ctx: RuleContext, side: Expression, column: str) -> bool:
    return ctx.catalog.owner_of_column(column, side.tables()) is not None


def _maybe_filter(child: Expression, preds: list[Predicate]) -> Expression:
    if not preds:
        return child
    return Filter(child, tuple(preds))


# -- safe rules ---------------------------------------------------------------


def _filter_merge(node: Expression, ctx: RuleContext) -> Expression:
    """Filter(Filter(x)) -> one Filter with the concatenated conjunct."""
    if isinstance(node, Filter) and isinstance(node.child, Filter):
        return Filter(node.child.child, node.child.predicates + node.predicates)
    return node


def _dedupe_predicates(node: Expression, ctx: RuleContext) -> Expression:
    """Drop exact-duplicate predicates inside a Filter."""
    if isinstance(node, Filter):
        seen: list[Predicate] = []
        for p in node.predicates:
            if p not in seen:
                seen.append(p)
        if len(seen) != len(node.predicates):
            return Filter(node.child, tuple(seen))
    return node


def _push_filter_below_join(node: Expression, ctx: RuleContext) -> Expression:
    """Route each predicate to the join side that owns its column."""
    if not (isinstance(node, Filter) and isinstance(node.child, Join)):
        return node
    join = node.child
    left_preds, right_preds, keep = [], [], []
    for p in node.predicates:
        if _owned_by(ctx, join.left, p.column):
            left_preds.append(p)
        elif _owned_by(ctx, join.right, p.column):
            right_preds.append(p)
        else:
            keep.append(p)
    if not left_preds and not right_preds:
        return node
    new_join = replace(
        join,
        left=_maybe_filter(join.left, left_preds),
        right=_maybe_filter(join.right, right_preds),
    )
    return _maybe_filter(new_join, keep)


def _push_filter_below_union(node: Expression, ctx: RuleContext) -> Expression:
    if isinstance(node, Filter) and isinstance(node.child, Union):
        union = node.child
        return Union(
            Filter(union.left, node.predicates),
            Filter(union.right, node.predicates),
        )
    return node


def _push_filter_below_aggregate(node: Expression, ctx: RuleContext) -> Expression:
    """Predicates on group-by columns commute with the aggregate."""
    if not (isinstance(node, Filter) and isinstance(node.child, Aggregate)):
        return node
    agg = node.child
    movable = [p for p in node.predicates if p.column in agg.group_by]
    keep = [p for p in node.predicates if p.column not in agg.group_by]
    if not movable:
        return node
    pushed = replace(agg, child=_maybe_filter(agg.child, movable))
    return _maybe_filter(pushed, keep)


def _project_merge(node: Expression, ctx: RuleContext) -> Expression:
    if isinstance(node, Project) and isinstance(node.child, Project):
        return Project(node.child.child, node.columns)
    return node


def _projection_pushdown(node: Expression, ctx: RuleContext) -> Expression:
    """Project(Join) -> Join of narrowed sides (join keys retained)."""
    if not (isinstance(node, Project) and isinstance(node.child, Join)):
        return node
    join = node.child
    if isinstance(join.left, Project) or isinstance(join.right, Project):
        return node  # already pushed

    def side_columns(side: Expression, key: str) -> tuple[str, ...]:
        wanted = [c for c in node.columns if _owned_by(ctx, side, c)]
        needed = set(wanted) | {key}
        # Keep columns any Filter inside this side still references.
        for sub in side.walk():
            if isinstance(sub, Filter):
                needed.update(p.column for p in sub.predicates)
        return tuple(sorted(needed))

    new_join = replace(
        join,
        left=Project(join.left, side_columns(join.left, join.left_key)),
        right=Project(join.right, side_columns(join.right, join.right_key)),
    )
    return Project(new_join, node.columns)


# -- risky (estimate-dependent) rules -----------------------------------------


def _join_commute(node: Expression, ctx: RuleContext) -> Expression:
    """Put the (estimated) smaller input on the build side (left).

    Pays off only when the cardinality estimates order the inputs
    correctly — a misestimate flips the larger input onto the build side.
    """
    if isinstance(node, Join):
        left_rows = ctx.cardinality.estimate(node.left)
        right_rows = ctx.cardinality.estimate(node.right)
        if left_rows > right_rows:
            return Join(node.right, node.left, node.right_key, node.left_key)
    return node


def _early_aggregation(node: Expression, ctx: RuleContext) -> Expression:
    """Aggregate(Join) -> push a partial aggregate below the join (left side).

    Profitable when the partial aggregate strongly reduces the build input;
    wasted (or harmful) work when it does not — the classic situational
    rule that Bao-style steering learns to toggle per job.
    """
    if not (isinstance(node, Aggregate) and isinstance(node.child, Join)):
        return node
    join = node.child
    if isinstance(join.left, Aggregate):
        return node  # already applied
    input_rows = ctx.cardinality.estimate(join.left)
    partial = Aggregate(join.left, tuple(sorted(set(node.group_by) | {join.left_key})))
    reduced_rows = ctx.cardinality.estimate(partial)
    # Apply whenever the estimate says the partial aggregate does not
    # inflate the input.  The default estimator's distinct-product bound
    # makes this optimistic, so the rule is a genuine gamble: the true
    # reduction is often strong (win) but the extra aggregation pass is
    # wasted when it is not (regression) — steering's bread and butter.
    if reduced_rows <= input_rows:
        return replace(node, child=replace(join, left=partial))
    return node


def _aggregate_below_union(node: Expression, ctx: RuleContext) -> Expression:
    """Aggregate(Union) -> re-aggregate partial aggregates of each branch."""
    if not (isinstance(node, Aggregate) and isinstance(node.child, Union)):
        return node
    union = node.child
    if isinstance(union.left, Aggregate) and isinstance(union.right, Aggregate):
        return node  # already applied
    pushed = Union(
        Aggregate(union.left, node.group_by),
        Aggregate(union.right, node.group_by),
    )
    return replace(node, child=pushed)


#: The engine's full rule catalog, indexed by rule id.
ALL_RULES: tuple[Rule, ...] = (
    Rule(0, "FilterMerge", _filter_merge),
    Rule(1, "DedupePredicates", _dedupe_predicates),
    Rule(2, "PushFilterBelowJoin", _push_filter_below_join),
    Rule(3, "PushFilterBelowUnion", _push_filter_below_union),
    Rule(4, "PushFilterBelowAggregate", _push_filter_below_aggregate),
    Rule(5, "ProjectMerge", _project_merge),
    Rule(6, "ProjectionPushdown", _projection_pushdown),
    Rule(7, "JoinCommute", _join_commute, risky=True),
    Rule(8, "EarlyAggregation", _early_aggregation, risky=True),
    Rule(9, "AggregateBelowUnion", _aggregate_below_union, risky=True),
)
