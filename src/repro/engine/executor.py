"""Simulated cluster execution of stage DAGs.

Executes a :class:`~repro.engine.stages.StageGraph` against a fleet of
machines, producing the runtime phenomena Section 4.2 cares about:

- *actual* stage durations (true cardinalities + execution noise),
- per-machine temporary-storage occupancy over time, with hotspots caused
  by skewed task placement (some machines are systematically preferred),
- restart cost after a failure, with and without checkpoint cuts, and
- temp-storage release when a stage's output has been durably
  checkpointed (the Phoebe effect).

The executor holds *no* learned logic; it is the environment the
checkpoint optimizer and computation-reuse services are measured in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.engine.stages import Stage, StageGraph
from repro.obs.events import ObsEvent

if TYPE_CHECKING:
    from repro.obs.runtime import ObservabilityRuntime

#: Durable-store write throughput, bytes/second (for checkpoint writes).
CHECKPOINT_WRITE_RATE = 500e6

#: Interned string forms of small stage ids (event-attribute hot path).
_SMALL_INT_STR = tuple(map(str, range(64)))

#: Systematic runtime effects the analytical cost model does not capture
#: (shuffle network time, hash-table spills, vectorized scan speedups).
#: Applied only to truth-sized runs: they represent physical reality,
#: which is exactly what the learned stage predictors recover [52].
OPERATOR_RUNTIME_FACTORS = {
    "Scan": 1.0,
    "Filter": 0.85,
    "Project": 0.8,
    "Join": 1.6,
    "Aggregate": 1.35,
    "Union": 1.0,
}


@dataclass
class StageRun:
    """Observed execution of one stage."""

    stage_id: int
    start: float
    end: float
    machine_bytes: dict[int, float]  # machine -> temp output bytes placed

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class ExecutionReport:
    """Everything the simulated run produced."""

    runs: list[StageRun]
    runtime: float                     # job wall-clock (critical path), seconds
    total_processing: float            # sum of stage durations, seconds
    peak_temp_per_machine: dict[int, float]
    checkpointed: frozenset[int]

    @property
    def peak_temp_bytes(self) -> float:
        """Temp occupancy of the hottest machine (the hotspot metric)."""
        if not self.peak_temp_per_machine:
            return 0.0
        return max(self.peak_temp_per_machine.values())

    def run_of(self, stage_id: int) -> StageRun:
        return self.runs[stage_id]

    def to_events(self) -> "list[ObsEvent]":
        """The run as shared observability events (simulated timestamps).

        One ``stage`` event per stage run (value = duration seconds,
        stamped at stage start) plus one ``job`` summary event at job
        end, so a replayed report reconstructs the execution timeline in
        any :class:`~repro.obs.events.EventLog`.
        """
        # Attribute tuples are built directly (in sorted-key order, the
        # freeze_attributes convention) and fields are passed
        # positionally: one event per executed stage makes this a hot
        # path under tracing.  Stage ids are small, so their string
        # forms come from an interned table instead of ``str()`` calls.
        checkpointed = self.checkpointed
        small = _SMALL_INT_STR
        events = [
            ObsEvent(
                run.start,
                "engine",
                "executor",
                "stage",
                run.duration,
                (
                    ("checkpointed", "True" if run.stage_id in checkpointed else "False"),
                    (
                        "stage_id",
                        small[run.stage_id]
                        if run.stage_id < len(small)
                        else str(run.stage_id),
                    ),
                ),
            )
            for run in self.runs
        ]
        job_end = max((run.end for run in self.runs), default=0.0)
        events.append(
            ObsEvent(
                job_end,
                "engine",
                "executor",
                "job",
                self.runtime,
                (
                    ("checkpoints", str(len(self.checkpointed))),
                    ("stages", str(len(self.runs))),
                ),
            )
        )
        return events


class ClusterExecutor:
    """Deterministic-given-seed simulator of a machine fleet."""

    def __init__(
        self,
        n_machines: int = 16,
        noise: float = 0.1,
        placement_skew: float = 1.5,
        checkpoint_overhead_seconds: float = 0.05,
        rng: np.random.Generator | int | None = None,
        obs: "ObservabilityRuntime | None" = None,
    ) -> None:
        if n_machines < 1:
            raise ValueError("n_machines must be >= 1")
        if noise < 0:
            raise ValueError("noise must be non-negative")
        if checkpoint_overhead_seconds < 0:
            raise ValueError("checkpoint_overhead_seconds must be non-negative")
        self.n_machines = n_machines
        self.noise = noise
        self.checkpoint_overhead_seconds = checkpoint_overhead_seconds
        self._obs = obs
        self._rng = np.random.default_rng(rng)
        # Skewed placement preferences: a few machines attract more tasks,
        # which is what creates temp-storage hotspots in production [52].
        raw = self._rng.exponential(scale=1.0, size=n_machines) ** placement_skew
        self._placement_weights = raw / raw.sum()

    def bind(self, obs: "ObservabilityRuntime | None") -> "ClusterExecutor":
        self._obs = obs
        return self

    # -- execution ------------------------------------------------------------
    def run(
        self,
        graph: StageGraph,
        checkpoints: frozenset[int] | set[int] = frozenset(),
        start_time: float = 0.0,
    ) -> ExecutionReport:
        """Execute the DAG; ``checkpoints`` marks stages written durably.

        When an observability runtime is bound, the call is wrapped in an
        ``engine.executor.run`` span and the finished report is replayed
        into the event log (stage/job events on simulated time).
        """
        if self._obs is None:
            return self._run(graph, checkpoints, start_time)
        with self._obs.span(
            "engine.executor.run", layer="engine", stages=len(graph.stages)
        ) as span:
            report = self._run(graph, checkpoints, start_time)
            span.attributes["sim_runtime"] = round(report.runtime, 6)
            self._obs.replay(report)
            return report

    def _run(
        self,
        graph: StageGraph,
        checkpoints: frozenset[int] | set[int],
        start_time: float,
    ) -> ExecutionReport:
        checkpoints = frozenset(checkpoints)
        runs: list[StageRun] = []
        finish: dict[int, float] = {}
        for stage in graph.topological_order():
            ready = max(
                (finish[d] for d in stage.depends_on), default=start_time
            )
            duration = self._actual_duration(stage)
            end = ready + duration
            finish[stage.stage_id] = end
            runs.append(
                StageRun(
                    stage_id=stage.stage_id,
                    start=ready,
                    end=end,
                    machine_bytes=self._place_output(stage),
                )
            )
        # Checkpoint writes are asynchronous; the residual job-level cost
        # (coordination, commit records) is a small per-checkpoint overhead.
        runtime = (
            max(finish.values())
            - start_time
            + self.checkpoint_overhead_seconds * len(checkpoints)
        )
        total = sum(r.duration for r in runs)
        peaks = self._temp_peaks(graph, runs, checkpoints)
        return ExecutionReport(
            runs=runs,
            runtime=runtime,
            total_processing=total,
            peak_temp_per_machine=peaks,
            checkpointed=checkpoints,
        )

    def _actual_duration(self, stage: Stage) -> float:
        multiplier = float(
            np.exp(self._rng.normal(loc=0.0, scale=self.noise))
        )
        base = stage.true_duration()
        if stage.actual_work is not None:
            base *= OPERATOR_RUNTIME_FACTORS.get(stage.operator, 1.0)
        return base * multiplier

    def _place_output(self, stage: Stage) -> dict[int, float]:
        """Distribute the stage's output bytes over skew-chosen machines."""
        machines = self._rng.choice(
            self.n_machines,
            size=stage.n_tasks,
            p=self._placement_weights,
        )
        per_task = stage.true_bytes() / stage.n_tasks
        placed: dict[int, float] = {}
        for m in machines:
            placed[int(m)] = placed.get(int(m), 0.0) + per_task
        return placed

    # -- temp storage ------------------------------------------------------------
    def _temp_peaks(
        self,
        graph: StageGraph,
        runs: list[StageRun],
        checkpoints: frozenset[int],
    ) -> dict[int, float]:
        """Per-machine peak temp bytes via an event sweep.

        A stage's output occupies local temp from its end until *job end*:
        like Cosmos and Spark, intermediate outputs are retained for the
        whole job so failed downstream stages can be retried without
        recomputing their inputs.  A checkpointed stage is the exception —
        once its output is durably written, the local copy is deleted
        (this early release is exactly how Phoebe frees hotspots [52]).
        The sink's output is the job result, not temp.
        """
        events: list[tuple[float, int, float]] = []  # (time, machine, delta)
        sink_id = graph.sink.stage_id
        job_end = max(run.end for run in runs)
        for run in runs:
            if run.stage_id == sink_id:
                continue
            release = job_end
            if run.stage_id in checkpoints:
                stage = graph.stages[run.stage_id]
                # Tasks write their partitions to the durable store in
                # parallel, so write bandwidth scales with task count.
                write_done = run.end + stage.true_bytes() / (
                    CHECKPOINT_WRITE_RATE * stage.n_tasks
                )
                release = min(release, write_done)
            for machine, nbytes in run.machine_bytes.items():
                events.append((run.end, machine, nbytes))
                events.append((release, machine, -nbytes))
        events.sort(key=lambda e: (e[0], -e[2]))
        level = {m: 0.0 for m in range(self.n_machines)}
        peak = {m: 0.0 for m in range(self.n_machines)}
        for _, machine, delta in events:
            level[machine] += delta
            peak[machine] = max(peak[machine], level[machine])
        return peak

    # -- failure & restart ------------------------------------------------------------
    def restart_work_seconds(
        self,
        graph: StageGraph,
        report: ExecutionReport,
        failure_time: float,
    ) -> float:
        """Wall-clock seconds to recover after a failure at ``failure_time``.

        A finished stage's output survives the failure only if it was
        checkpointed (un-checkpointed outputs live in local temp and are
        assumed lost with the machine).  Recovery re-runs exactly the
        stages whose outputs are needed but unavailable, respecting DAG
        dependencies; the returned value is the critical path of that
        re-run set plus the remaining (not-yet-finished) work.
        """
        finished = {
            r.stage_id for r in report.runs if r.end <= failure_time
        }
        available = finished & report.checkpointed

        rerun: set[int] = set()
        stack = [graph.sink.stage_id]
        while stack:
            stage_id = stack.pop()
            if stage_id in available or stage_id in rerun:
                continue
            rerun.add(stage_id)
            stack.extend(graph.stages[stage_id].depends_on)

        finish: dict[int, float] = {}
        for stage in graph.topological_order():
            if stage.stage_id not in rerun:
                finish[stage.stage_id] = 0.0  # output already available
                continue
            ready = max(
                (finish[d] for d in stage.depends_on), default=0.0
            )
            finish[stage.stage_id] = ready + report.runs[stage.stage_id].duration
        return finish[graph.sink.stage_id]
