"""Stage-DAG compilation: from a logical plan to executable stages.

Big-data engines like SCOPE and Spark compile a job into a DAG of stages
executed in parallel (Section 4.2, Query Execution).  Each plan node
becomes one stage; stage sizing (task count, work, output bytes) comes
from a cardinality/cost model, which is deliberately pluggable: the
*executor* sizes stages with the true model, while Phoebe's checkpoint
optimizer sizes them with its learned predictions.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.engine.cost import DefaultCostModel
from repro.engine.expr import Expression

#: Abstract cost units one task can process per second.
TASK_RATE = 2_000_000.0
#: Rows of output that justify one additional task.
ROWS_PER_TASK = 1_000_000.0
#: Fixed scheduling overhead per stage, in seconds.
STAGE_OVERHEAD_S = 0.5
MAX_TASKS = 64


@dataclass
class Stage:
    """One executable stage of a compiled job.

    ``work``/``output_*`` are the *estimated* sizes the optimizer and the
    checkpoint service see.  ``actual_work``/``actual_bytes``, when set by
    :func:`compile_stages` with a ground-truth model, are what execution
    really costs — the executor uses them, learned services must not.
    """

    stage_id: int
    operator: str
    depends_on: tuple[int, ...]
    work: float            # abstract cost units (drives duration)
    output_rows: float
    output_bytes: float
    n_tasks: int
    actual_work: float | None = None
    actual_bytes: float | None = None

    def duration(self) -> float:
        """Estimated wall-clock seconds for this stage."""
        return STAGE_OVERHEAD_S + self.work / (TASK_RATE * self.n_tasks)

    def true_duration(self) -> float:
        """Wall-clock seconds execution actually takes (before noise)."""
        work = self.work if self.actual_work is None else self.actual_work
        return STAGE_OVERHEAD_S + work / (TASK_RATE * self.n_tasks)

    def true_bytes(self) -> float:
        return self.output_bytes if self.actual_bytes is None else self.actual_bytes


@dataclass
class StageGraph:
    """A DAG of stages; ``stages[i].stage_id == i`` always holds."""

    stages: list[Stage]

    def __post_init__(self) -> None:
        for i, stage in enumerate(self.stages):
            if stage.stage_id != i:
                raise ValueError("stage ids must be dense and ordered")
            if any(d >= i for d in stage.depends_on):
                raise ValueError("dependencies must point to earlier stages")

    def __len__(self) -> int:
        return len(self.stages)

    @property
    def sink(self) -> Stage:
        return self.stages[-1]

    def consumers(self, stage_id: int) -> list[int]:
        return [
            s.stage_id for s in self.stages if stage_id in s.depends_on
        ]

    def topological_order(self) -> list[Stage]:
        return list(self.stages)  # dense ids are already topological

    def ancestors(self, stage_id: int) -> set[int]:
        out: set[int] = set()
        frontier = list(self.stages[stage_id].depends_on)
        while frontier:
            s = frontier.pop()
            if s not in out:
                out.add(s)
                frontier.extend(self.stages[s].depends_on)
        return out

    def critical_path_seconds(self) -> float:
        finish: dict[int, float] = {}
        for stage in self.stages:
            ready = max((finish[d] for d in stage.depends_on), default=0.0)
            finish[stage.stage_id] = ready + stage.duration()
        return finish[self.sink.stage_id]

    def total_work_seconds(self) -> float:
        return sum(stage.duration() for stage in self.stages)

    def to_networkx(self) -> nx.DiGraph:
        graph = nx.DiGraph()
        for stage in self.stages:
            graph.add_node(stage.stage_id, operator=stage.operator)
            for dep in stage.depends_on:
                graph.add_edge(dep, stage.stage_id)
        return graph


def compile_stages(
    plan: Expression,
    cost_model: DefaultCostModel,
    max_stage_seconds: float | None = None,
    truth: DefaultCostModel | None = None,
    max_stage_bytes: float | None = None,
) -> StageGraph:
    """One stage per plan node, bottom-up, sized by ``cost_model``.

    ``max_stage_seconds`` bounds individual stage duration: an operator
    whose estimated duration exceeds the bound executes as a *chain of
    waves*, each producing one partition of the operator's output (work,
    rows, and bytes split evenly).  Every wave of a consuming operator
    depends on **all** waves of its inputs — shuffle-barrier semantics —
    so input partitions stay resident in local temp storage until the
    consuming operator completes entirely: the mechanism behind the
    temp-storage hotspots of [52].  Wave counts come from the *estimated*
    sizes (the engine compiles one graph and lives with it).

    ``truth`` optionally attaches ground-truth work/bytes to each stage
    (``actual_work``/``actual_bytes``); the executor uses those while the
    learned services still only see the estimates.
    """
    if max_stage_seconds is not None and max_stage_seconds <= STAGE_OVERHEAD_S:
        raise ValueError(
            f"max_stage_seconds must exceed the stage overhead {STAGE_OVERHEAD_S}"
        )
    stages: list[Stage] = []
    node_to_stage: dict[int, int] = {}

    def append_stage(
        operator: str,
        deps: tuple[int, ...],
        work: float,
        rows: float,
        nbytes: float,
        n_tasks: int,
        actual_work: float | None,
        actual_bytes: float | None,
    ) -> int:
        stage = Stage(
            stage_id=len(stages),
            operator=operator,
            depends_on=deps,
            work=work,
            output_rows=rows,
            output_bytes=nbytes,
            n_tasks=n_tasks,
            actual_work=actual_work,
            actual_bytes=actual_bytes,
        )
        stages.append(stage)
        return stage.stage_id

    def build(node: Expression) -> list[int]:
        key = id(node)
        if key in node_to_stage:
            return node_to_stage[key]
        input_waves = tuple(
            wave for child in node.children for wave in build(child)
        )
        rows = cost_model.cardinality.estimate(node)
        work = cost_model._node_cost(node).total
        nbytes = cost_model.output_bytes(node)
        actual_work = actual_bytes = None
        if truth is not None:
            actual_work = truth._node_cost(node).total
            actual_bytes = truth.output_bytes(node)
        n_tasks = int(min(MAX_TASKS, max(1, round(rows / ROWS_PER_TASK))))
        operator = type(node).__name__
        n_waves = 1
        if max_stage_seconds is not None:
            payload = work / (TASK_RATE * n_tasks)
            wave_budget = max_stage_seconds - STAGE_OVERHEAD_S
            n_waves = max(1, int(np.ceil(payload / wave_budget)))
        if max_stage_bytes is not None and max_stage_bytes > 0:
            # SCOPE-style bounded vertex data: fat outputs also split.
            n_waves = max(n_waves, int(np.ceil(nbytes / max_stage_bytes)))

        def split(value: float | None) -> float | None:
            return None if value is None else value / n_waves

        waves: list[int] = []
        for _ in range(n_waves):
            deps = input_waves if not waves else (waves[-1], *input_waves)
            waves.append(
                append_stage(
                    operator,
                    deps,
                    work / n_waves,
                    rows / n_waves,
                    nbytes / n_waves,
                    n_tasks,
                    split(actual_work),
                    split(actual_bytes),
                )
            )
        node_to_stage[key] = waves
        return waves

    build(plan)
    return StageGraph(stages)
