"""The rule-driven optimizer with externalized estimation hooks.

Design follows the paper's guiding principle: "minimize changes to the
existing optimizer and supplement it with learned components".  The
optimizer itself is a dumb fixpoint rule engine; accuracy comes entirely
from the :class:`~repro.engine.estimator.CardinalityModel` and cost model
plugged into it.  Learned cardinalities, learned costs, and rule-hint
steering all enter through these two seams plus the
:class:`RuleConfig` bitmask.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.engine.catalog import Catalog
from repro.engine.cost import DefaultCostModel, PlanCost
from repro.engine.estimator import (
    CardinalityModel,
    DefaultCardinalityEstimator,
)
from repro.engine.expr import Expression, rewrite_bottom_up
from repro.engine.rules import ALL_RULES, RuleContext

if TYPE_CHECKING:
    from repro.obs.runtime import ObservabilityRuntime


@dataclass(frozen=True)
class RuleConfig:
    """An immutable on/off assignment for every rule (the Bao search space)."""

    bits: tuple[bool, ...]

    def __post_init__(self) -> None:
        if len(self.bits) != len(ALL_RULES):
            raise ValueError(
                f"expected {len(ALL_RULES)} bits, got {len(self.bits)}"
            )

    @classmethod
    def all_on(cls) -> "RuleConfig":
        return cls(tuple(True for _ in ALL_RULES))

    @classmethod
    def all_off(cls) -> "RuleConfig":
        return cls(tuple(False for _ in ALL_RULES))

    @classmethod
    def from_disabled(cls, disabled: set[int]) -> "RuleConfig":
        return cls(tuple(r.rule_id not in disabled for r in ALL_RULES))

    def enabled(self, rule_id: int) -> bool:
        return self.bits[rule_id]

    def flip(self, rule_id: int) -> "RuleConfig":
        """Return a config with exactly one bit toggled (one steering step)."""
        bits = list(self.bits)
        bits[rule_id] = not bits[rule_id]
        return RuleConfig(tuple(bits))

    def hamming(self, other: "RuleConfig") -> int:
        return sum(a != b for a, b in zip(self.bits, other.bits))

    def disabled_ids(self) -> tuple[int, ...]:
        return tuple(i for i, on in enumerate(self.bits) if not on)


@dataclass
class OptimizerResult:
    """Optimized plan plus the estimates the optimizer believed."""

    plan: Expression
    estimated_cost: PlanCost
    estimated_rows: float
    config: RuleConfig
    passes: int


class Optimizer:
    """Fixpoint rule application, costed with pluggable estimators."""

    def __init__(
        self,
        catalog: Catalog,
        cardinality: CardinalityModel | None = None,
        cost_model: DefaultCostModel | None = None,
        max_passes: int = 5,
        obs: "ObservabilityRuntime | None" = None,
    ) -> None:
        self.catalog = catalog
        self.cardinality = cardinality or DefaultCardinalityEstimator(catalog)
        self.cost_model = cost_model or DefaultCostModel(catalog, self.cardinality)
        if max_passes < 1:
            raise ValueError("max_passes must be >= 1")
        self.max_passes = max_passes
        self._obs = obs

    def bind(self, obs: "ObservabilityRuntime | None") -> "Optimizer":
        self._obs = obs
        return self

    def optimize(
        self, expr: Expression, config: RuleConfig | None = None
    ) -> OptimizerResult:
        """Apply enabled rules to fixpoint, then cost the final plan."""
        if self._obs is None:
            return self._optimize(expr, config)
        with self._obs.span(
            "engine.optimizer.optimize", layer="engine", plan_size=expr.size
        ) as span:
            result = self._optimize(expr, config)
            span.attributes["passes"] = result.passes
            return result

    def _optimize(
        self, expr: Expression, config: RuleConfig | None
    ) -> OptimizerResult:
        config = config or RuleConfig.all_on()
        ctx = RuleContext(self.catalog, self.cardinality)
        active = [rule for rule in ALL_RULES if config.enabled(rule.rule_id)]
        plan = expr
        passes = 0
        for _ in range(self.max_passes):
            passes += 1
            before = plan
            for rule in active:
                plan = rewrite_bottom_up(
                    plan, lambda node, r=rule: r.apply(node, ctx)
                )
            if plan == before:
                break
        return OptimizerResult(
            plan=plan,
            estimated_cost=self.cost_model.cost(plan),
            estimated_rows=self.cardinality.estimate(plan),
            config=config,
            passes=passes,
        )
