"""Subexpression signatures: the lightweight hashes behind reuse.

CloudViews [21, 22] relies on "a lightweight subexpression hash, called a
signature, for scalable materialized view selection and efficient view
matching"; Peregrine [20] categorizes queries into templates "based on
their recurrence and similarity".

Two hash flavours are provided:

- :func:`signature` — the *strict* signature: includes predicate literal
  values, so two subexpressions match only if they compute identical
  results.  This is the CloudViews view-matching key.
- :func:`template_signature` — the *template* signature: predicate
  literals are masked, so periodic runs of the same script with different
  predicate values (the SCOPE recurring-job pattern) collapse to one
  template.  This is the Peregrine templatization key and the micromodel
  routing key for learned cardinality/cost.
"""

from __future__ import annotations

import hashlib

from repro.engine.expr import (
    Aggregate,
    Expression,
    Filter,
    Join,
    Project,
    Scan,
    Union,
)


def _describe(node: Expression, mask_literals: bool) -> str:
    if isinstance(node, Scan):
        return f"Scan:{node.table}"
    if isinstance(node, Filter):
        parts = []
        for p in node.predicates:
            value = "?" if mask_literals else f"{p.value!r}"
            parts.append(f"{p.column}{p.op}{value}")
        return f"Filter:{'&'.join(parts)}"
    if isinstance(node, Project):
        return f"Project:{','.join(node.columns)}"
    if isinstance(node, Join):
        return f"Join:{node.left_key}={node.right_key}"
    if isinstance(node, Aggregate):
        return f"Aggregate:{','.join(node.group_by)}"
    if isinstance(node, Union):
        return "Union"
    raise TypeError(f"unknown expression node: {type(node).__name__}")


def _hash_tree(node: Expression, mask_literals: bool) -> str:
    child_hashes = "|".join(
        _hash_tree(child, mask_literals) for child in node.children
    )
    payload = f"{_describe(node, mask_literals)}({child_hashes})"
    return hashlib.sha1(payload.encode()).hexdigest()[:16]


def signature(expr: Expression) -> str:
    """Strict structural hash; equal results <=> equal signatures."""
    return _hash_tree(expr, mask_literals=False)


def template_signature(expr: Expression) -> str:
    """Literal-masked hash; groups recurring instances into one template."""
    return _hash_tree(expr, mask_literals=True)


def semantic_signature(expr: Expression) -> str:
    """Signature modulo semantics-preserving syntax differences.

    Two subexpressions that compute identical results but were written
    differently still match: predicate order within a conjunct is
    irrelevant, and an equi-join is symmetric, so joins canonicalize by
    ordering their children.  This extends CloudViews matching "from the
    syntactically equivalent subexpressions detected by the signatures to
    semantically equivalent ... subexpressions" (Section 4.2).
    """
    return _hash_tree(_canonicalize(expr), mask_literals=False)


def _canonicalize(node: Expression) -> Expression:
    """Rewrite to the canonical representative of the semantic class."""
    from dataclasses import replace

    children = tuple(_canonicalize(child) for child in node.children)
    if children != node.children:
        node = node.with_children(children)
    if isinstance(node, Filter):
        ordered = tuple(
            sorted(node.predicates, key=lambda p: (p.column, p.op, p.value))
        )
        if ordered != node.predicates:
            node = replace(node, predicates=ordered)
    elif isinstance(node, Join):
        left_hash = _hash_tree(node.left, mask_literals=False)
        right_hash = _hash_tree(node.right, mask_literals=False)
        if (right_hash, node.right_key) < (left_hash, node.left_key):
            node = Join(node.right, node.left, node.right_key, node.left_key)
    elif isinstance(node, Union):
        left_hash = _hash_tree(node.left, mask_literals=False)
        right_hash = _hash_tree(node.right, mask_literals=False)
        if right_hash < left_hash:
            node = Union(node.right, node.left)
    return node


def enumerate_signatures(expr: Expression, strict: bool = True) -> dict[str, Expression]:
    """Signature -> subexpression map for every node in ``expr``.

    When several nodes share a signature (identical subtrees appearing
    twice in one plan), the first in post-order wins; they are
    interchangeable by construction.
    """
    fn = signature if strict else template_signature
    out: dict[str, Expression] = {}
    for node in expr.walk():
        out.setdefault(fn(node), node)
    return out
