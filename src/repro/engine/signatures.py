"""Subexpression signatures: the lightweight hashes behind reuse.

CloudViews [21, 22] relies on "a lightweight subexpression hash, called a
signature, for scalable materialized view selection and efficient view
matching"; Peregrine [20] categorizes queries into templates "based on
their recurrence and similarity".

Two hash flavours are provided:

- :func:`signature` — the *strict* signature: includes predicate literal
  values, so two subexpressions match only if they compute identical
  results.  This is the CloudViews view-matching key.
- :func:`template_signature` — the *template* signature: predicate
  literals are masked, so periodic runs of the same script with different
  predicate values (the SCOPE recurring-job pattern) collapse to one
  template.  This is the Peregrine templatization key and the micromodel
  routing key for learned cardinality/cost.

Both flavours are computed together in a single bottom-up pass and
memoized on the (immutable) expression nodes, so repeated calls — and
calls on any node of an already-hashed plan — are O(1) dictionary reads
instead of a fresh tree walk plus SHA1 per call.  :func:`signatures`
exposes the pair directly; :func:`enumerate_all_signatures` builds the
strict and template subexpression maps in one traversal.
"""

from __future__ import annotations

import hashlib
from typing import NamedTuple

from repro.engine.expr import (
    Aggregate,
    Expression,
    Filter,
    Join,
    Project,
    Scan,
    Union,
)

#: Instance-dict slot holding the memoized (strict, template) pair.
#: Expression nodes are frozen dataclasses, so once built their hashes
#: can never go stale; ``dataclasses.replace`` and deserialization build
#: fresh instances without the cache entry.
_SIG_ATTR = "_memo_signatures"

#: Instance-dict slot holding the memoized per-subtree signature sets.
_SIGSET_ATTR = "_memo_signature_sets"


class PlanSignatures(NamedTuple):
    """Both signature flavours of one expression node."""

    strict: str
    template: str


class SignatureSets(NamedTuple):
    """Every signature carried anywhere in one subtree, both flavours.

    The inverted-index primitive behind CloudViews matching: a plan
    contains a candidate subexpression iff the candidate's strict
    signature is a member of the plan's strict set — an O(1) lookup
    instead of a node-by-node structural-equality walk.
    """

    strict: frozenset[str]
    template: frozenset[str]


def _describe(node: Expression, mask_literals: bool) -> str:
    if isinstance(node, Scan):
        return f"Scan:{node.table}"
    if isinstance(node, Filter):
        parts = []
        for p in node.predicates:
            value = "?" if mask_literals else f"{p.value!r}"
            parts.append(f"{p.column}{p.op}{value}")
        return f"Filter:{'&'.join(parts)}"
    if isinstance(node, Project):
        return f"Project:{','.join(node.columns)}"
    if isinstance(node, Join):
        return f"Join:{node.left_key}={node.right_key}"
    if isinstance(node, Aggregate):
        return f"Aggregate:{','.join(node.group_by)}"
    if isinstance(node, Union):
        return "Union"
    raise TypeError(f"unknown expression node: {type(node).__name__}")


def _digest(payload: str) -> str:
    return hashlib.sha1(payload.encode()).hexdigest()[:16]


def signatures(expr: Expression) -> PlanSignatures:
    """Strict and template signatures of ``expr`` in one cached pass.

    The first call walks the subtree bottom-up once, computing both
    flavours per node; every node visited is memoized, so subsequent
    calls on the plan *or any of its subexpressions* are O(1).
    """
    cached = expr.__dict__.get(_SIG_ATTR)
    if cached is not None:
        return cached
    child_sigs = [signatures(child) for child in expr.children]
    strict_desc = _describe(expr, mask_literals=False)
    # Only Filter nodes carry literals; everything else shares one label.
    template_desc = (
        _describe(expr, mask_literals=True)
        if isinstance(expr, Filter)
        else strict_desc
    )
    strict_children = "|".join(s.strict for s in child_sigs)
    template_children = "|".join(s.template for s in child_sigs)
    sigs = PlanSignatures(
        strict=_digest(f"{strict_desc}({strict_children})"),
        template=_digest(f"{template_desc}({template_children})"),
    )
    object.__setattr__(expr, _SIG_ATTR, sigs)
    return sigs


def signature_sets(expr: Expression) -> SignatureSets:
    """Memoized (strict set, template set) of every node under ``expr``.

    Built bottom-up from the children's cached sets, so hashing any plan
    once makes membership tests on it — and on every subtree of it —
    O(1) for the rest of the process lifetime.
    """
    cached = expr.__dict__.get(_SIGSET_ATTR)
    if cached is not None:
        return cached
    sigs = signatures(expr)
    strict: set[str] = {sigs.strict}
    template: set[str] = {sigs.template}
    for child in expr.children:
        child_sets = signature_sets(child)
        strict |= child_sets.strict
        template |= child_sets.template
    sets = SignatureSets(frozenset(strict), frozenset(template))
    object.__setattr__(expr, _SIGSET_ATTR, sets)
    return sets


def signature(expr: Expression) -> str:
    """Strict structural hash; equal results <=> equal signatures."""
    return signatures(expr).strict


def template_signature(expr: Expression) -> str:
    """Literal-masked hash; groups recurring instances into one template."""
    return signatures(expr).template


def semantic_signature(expr: Expression) -> str:
    """Signature modulo semantics-preserving syntax differences.

    Two subexpressions that compute identical results but were written
    differently still match: predicate order within a conjunct is
    irrelevant, and an equi-join is symmetric, so joins canonicalize by
    ordering their children.  This extends CloudViews matching "from the
    syntactically equivalent subexpressions detected by the signatures to
    semantically equivalent ... subexpressions" (Section 4.2).
    """
    return signatures(_canonicalize(expr)).strict


def _canonicalize(node: Expression) -> Expression:
    """Rewrite to the canonical representative of the semantic class."""
    from dataclasses import replace

    children = tuple(_canonicalize(child) for child in node.children)
    if children != node.children:
        node = node.with_children(children)
    if isinstance(node, Filter):
        ordered = tuple(
            sorted(node.predicates, key=lambda p: (p.column, p.op, p.value))
        )
        if ordered != node.predicates:
            node = replace(node, predicates=ordered)
    elif isinstance(node, Join):
        left_hash = signatures(node.left).strict
        right_hash = signatures(node.right).strict
        if (right_hash, node.right_key) < (left_hash, node.left_key):
            node = Join(node.right, node.left, node.right_key, node.left_key)
    elif isinstance(node, Union):
        left_hash = signatures(node.left).strict
        right_hash = signatures(node.right).strict
        if right_hash < left_hash:
            node = Union(node.right, node.left)
    return node


def enumerate_signatures(expr: Expression, strict: bool = True) -> dict[str, Expression]:
    """Signature -> subexpression map for every node in ``expr``.

    When several nodes share a signature (identical subtrees appearing
    twice in one plan), the first in post-order wins; they are
    interchangeable by construction.
    """
    out: dict[str, Expression] = {}
    for node in expr.walk():
        sigs = signatures(node)
        out.setdefault(sigs.strict if strict else sigs.template, node)
    return out


def enumerate_all_signatures(
    expr: Expression,
) -> tuple[dict[str, Expression], dict[str, Expression]]:
    """(strict map, template map) for every node, in a single traversal.

    Equivalent to calling :func:`enumerate_signatures` twice but walks
    the plan once — the shape workload-repository ingestion needs.
    """
    strict_map: dict[str, Expression] = {}
    template_map: dict[str, Expression] = {}
    for node in expr.walk():
        sigs = signatures(node)
        strict_map.setdefault(sigs.strict, node)
        template_map.setdefault(sigs.template, node)
    return strict_map, template_map
