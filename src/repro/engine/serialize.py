"""Cross-engine plan serialization (Direction 2: standardization).

"We are now exploring the use of cross-language query plan
specification, such as Substrait, as a standard plan representation
across our engines."

Plans serialize to a versioned, engine-agnostic dict (JSON-safe) and
back.  Round-tripping is exact: ``deserialize(serialize(p)) == p`` for
every expression the engine can build, which the property tests verify.
"""

from __future__ import annotations

import json
from typing import Any

from repro.engine.expr import (
    Aggregate,
    Expression,
    Filter,
    Join,
    Predicate,
    Project,
    Scan,
    Union,
)

#: Format version embedded in every serialized plan.
FORMAT_VERSION = 1


class PlanFormatError(ValueError):
    """Raised when a serialized plan is malformed or unsupported."""


def serialize(expr: Expression) -> dict[str, Any]:
    """Expression -> engine-agnostic dict (JSON-safe)."""
    return {"version": FORMAT_VERSION, "root": _node_to_dict(expr)}


def deserialize(payload: dict[str, Any]) -> Expression:
    """Engine-agnostic dict -> Expression (strict validation)."""
    if not isinstance(payload, dict):
        raise PlanFormatError("plan payload must be a dict")
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise PlanFormatError(f"unsupported plan format version: {version!r}")
    if "root" not in payload:
        raise PlanFormatError("plan payload missing 'root'")
    return _node_from_dict(payload["root"])


def to_json(expr: Expression) -> str:
    return json.dumps(serialize(expr), sort_keys=True)


def from_json(text: str) -> Expression:
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise PlanFormatError(f"invalid JSON: {exc}") from exc
    return deserialize(payload)


def _node_to_dict(node: Expression) -> dict[str, Any]:
    if isinstance(node, Scan):
        return {"op": "scan", "table": node.table}
    if isinstance(node, Filter):
        return {
            "op": "filter",
            "input": _node_to_dict(node.child),
            "predicates": [
                {"column": p.column, "cmp": p.op, "value": p.value}
                for p in node.predicates
            ],
        }
    if isinstance(node, Project):
        return {
            "op": "project",
            "input": _node_to_dict(node.child),
            "columns": list(node.columns),
        }
    if isinstance(node, Join):
        return {
            "op": "join",
            "left": _node_to_dict(node.left),
            "right": _node_to_dict(node.right),
            "left_key": node.left_key,
            "right_key": node.right_key,
        }
    if isinstance(node, Aggregate):
        return {
            "op": "aggregate",
            "input": _node_to_dict(node.child),
            "group_by": list(node.group_by),
        }
    if isinstance(node, Union):
        return {
            "op": "union",
            "left": _node_to_dict(node.left),
            "right": _node_to_dict(node.right),
        }
    raise PlanFormatError(f"unknown node type: {type(node).__name__}")


def _require(payload: dict, key: str) -> Any:
    if key not in payload:
        raise PlanFormatError(f"node missing required field {key!r}")
    return payload[key]


def _node_from_dict(payload: Any) -> Expression:
    if not isinstance(payload, dict):
        raise PlanFormatError("plan node must be a dict")
    op = _require(payload, "op")
    if op == "scan":
        table = _require(payload, "table")
        if not isinstance(table, str) or not table:
            raise PlanFormatError("scan.table must be a non-empty string")
        return Scan(table)
    if op == "filter":
        predicates = _require(payload, "predicates")
        if not isinstance(predicates, list) or not predicates:
            raise PlanFormatError("filter.predicates must be a non-empty list")
        return Filter(
            _node_from_dict(_require(payload, "input")),
            tuple(
                Predicate(
                    _require(p, "column"),
                    _require(p, "cmp"),
                    float(_require(p, "value")),
                )
                for p in predicates
            ),
        )
    if op == "project":
        columns = _require(payload, "columns")
        if not isinstance(columns, list) or not columns:
            raise PlanFormatError("project.columns must be a non-empty list")
        return Project(
            _node_from_dict(_require(payload, "input")), tuple(columns)
        )
    if op == "join":
        return Join(
            _node_from_dict(_require(payload, "left")),
            _node_from_dict(_require(payload, "right")),
            _require(payload, "left_key"),
            _require(payload, "right_key"),
        )
    if op == "aggregate":
        group_by = _require(payload, "group_by")
        if not isinstance(group_by, list):
            raise PlanFormatError("aggregate.group_by must be a list")
        return Aggregate(
            _node_from_dict(_require(payload, "input")), tuple(group_by)
        )
    if op == "union":
        return Union(
            _node_from_dict(_require(payload, "left")),
            _node_from_dict(_require(payload, "right")),
        )
    raise PlanFormatError(f"unknown operator: {op!r}")


def explain(expr: Expression, indent: str = "  ") -> str:
    """Human-readable plan tree (the engine's EXPLAIN output)."""
    lines: list[str] = []

    def walk(node: Expression, depth: int) -> None:
        prefix = indent * depth
        if isinstance(node, Scan):
            lines.append(f"{prefix}Scan [{node.table}]")
        elif isinstance(node, Filter):
            preds = " AND ".join(str(p) for p in node.predicates)
            lines.append(f"{prefix}Filter [{preds}]")
        elif isinstance(node, Project):
            lines.append(f"{prefix}Project [{', '.join(node.columns)}]")
        elif isinstance(node, Join):
            lines.append(f"{prefix}Join [{node.left_key} = {node.right_key}]")
        elif isinstance(node, Aggregate):
            lines.append(
                f"{prefix}Aggregate [group by {', '.join(node.group_by) or '<all>'}]"
            )
        elif isinstance(node, Union):
            lines.append(f"{prefix}Union")
        for child in node.children:
            walk(child, depth + 1)

    walk(expr, 0)
    return "\n".join(lines)
