"""Query engine substrate: a SCOPE/Spark-flavoured analytical engine model.

The paper's query-engine-layer services (Section 4.2) all assume an
engine with (a) a rule-configurable cost-based optimizer whose default
cardinality estimates are *imperfect*, and (b) a staged DAG executor with
per-machine temp-storage accounting and restartable jobs.  This subpackage
provides both, along with the subexpression *signatures* (lightweight
structural hashes) that Peregrine templatization and CloudViews reuse are
built on.

Nothing here is learned: this is the system being made autonomous, with
explicit extension points (``CardinalityModel``, ``CostModel`` hooks on
the optimizer) so the learned components in :mod:`repro.core` can be
"externalized" exactly as the paper prescribes — supplementing, not
replacing, the optimizer.
"""

from repro.engine.catalog import Catalog, ColumnStats, TableDef
from repro.engine.estimator import DefaultCardinalityEstimator, TrueCardinalityModel
from repro.engine.cost import DefaultCostModel, PlanCost
from repro.engine.expr import (
    Aggregate,
    Expression,
    Filter,
    Join,
    Predicate,
    Project,
    Scan,
    Union,
)
from repro.engine.optimizer import Optimizer, OptimizerResult, RuleConfig
from repro.engine.rules import ALL_RULES, Rule
from repro.engine.signatures import (
    PlanSignatures,
    SignatureSets,
    enumerate_all_signatures,
    semantic_signature,
    signature,
    signature_sets,
    signatures,
    template_signature,
)
from repro.engine.stages import Stage, StageGraph, compile_stages
from repro.engine.executor import ClusterExecutor, ExecutionReport, StageRun

__all__ = [
    "Expression",
    "Scan",
    "Filter",
    "Project",
    "Join",
    "Aggregate",
    "Union",
    "Predicate",
    "Catalog",
    "TableDef",
    "ColumnStats",
    "DefaultCardinalityEstimator",
    "TrueCardinalityModel",
    "DefaultCostModel",
    "PlanCost",
    "Rule",
    "ALL_RULES",
    "RuleConfig",
    "Optimizer",
    "OptimizerResult",
    "signature",
    "signatures",
    "semantic_signature",
    "template_signature",
    "PlanSignatures",
    "SignatureSets",
    "signature_sets",
    "enumerate_all_signatures",
    "Stage",
    "StageGraph",
    "compile_stages",
    "ClusterExecutor",
    "ExecutionReport",
    "StageRun",
]
