"""Plan cost model: per-operator costs driven by a cardinality model.

The cost model is *parameterized by* the cardinality model it consumes —
the externalization hook from Section 4.2: "we externalize the learned
components and add simple extensions to the optimizer to leverage these
external services".  Swapping in learned cardinalities changes costs (and
hence plan choices) without touching the optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.catalog import Catalog
from repro.engine.estimator import CardinalityModel
from repro.engine.signatures import signatures
from repro.engine.expr import (
    Aggregate,
    Expression,
    Filter,
    Join,
    Project,
    Scan,
    Union,
)


@dataclass(frozen=True)
class PlanCost:
    """Total plan cost and its CPU/IO breakdown (abstract cost units)."""

    cpu: float
    io: float

    @property
    def total(self) -> float:
        return self.cpu + self.io

    def __add__(self, other: "PlanCost") -> "PlanCost":
        return PlanCost(self.cpu + other.cpu, self.io + other.io)


#: Relative width multiplier applied per projected-away column fraction.
_FULL_WIDTH = 1.0


class DefaultCostModel:
    """Hash-join style analytical cost model.

    Costs (abstract units, roughly "rows touched"):

    - Scan: IO = rows * width
    - Filter: CPU = input rows (predicate evaluation)
    - Project: CPU = input rows * 0.1 (cheap, but narrows width)
    - Join: CPU = 1.2 * build(left) + probe(right) + output
    - Aggregate: CPU = input rows * 1.5 (hashing) + output
    - Union: CPU = output * 0.05 (concatenation)

    Width tracking makes projection pushdown profitable: a node's IO/CPU
    scale with the estimated fraction of columns still carried.
    """

    def __init__(self, catalog: Catalog, cardinality: CardinalityModel) -> None:
        self.catalog = catalog
        self.cardinality = cardinality
        # Width depends on plan structure only (literals never change
        # column sets), so it memoizes per template signature.  The
        # cardinality model is deliberately NOT memoized here: learned
        # models can retrain between calls.
        self._width_memo: dict[str, float] = {}

    def __getstate__(self) -> dict:
        # Keep process-pool payloads small: workers rebuild their own
        # memo instead of deserializing the parent's.
        state = dict(self.__dict__)
        state["_width_memo"] = {}
        return state

    def cost(self, expr: Expression) -> PlanCost:
        total = PlanCost(0.0, 0.0)
        for node in expr.walk():
            total = total + self._node_cost(node)
        return total

    def _node_cost(self, node: Expression) -> PlanCost:
        width = self.width_fraction(node)
        rows_out = self.cardinality.estimate(node)
        if isinstance(node, Scan):
            return PlanCost(cpu=0.0, io=rows_out * width)
        if isinstance(node, Filter):
            rows_in = self.cardinality.estimate(node.child)
            return PlanCost(cpu=rows_in * width, io=0.0)
        if isinstance(node, Project):
            rows_in = self.cardinality.estimate(node.child)
            return PlanCost(cpu=0.1 * rows_in, io=0.0)
        if isinstance(node, Join):
            build = self.cardinality.estimate(node.left)
            probe = self.cardinality.estimate(node.right)
            return PlanCost(
                cpu=(1.2 * build + probe + rows_out) * width, io=0.0
            )
        if isinstance(node, Aggregate):
            rows_in = self.cardinality.estimate(node.child)
            return PlanCost(cpu=(1.5 * rows_in + rows_out) * width, io=0.0)
        if isinstance(node, Union):
            return PlanCost(cpu=0.05 * rows_out * width, io=0.0)
        raise TypeError(f"unknown expression node: {type(node).__name__}")

    def width_fraction(self, node: Expression) -> float:
        """Estimated fraction of base-table width carried at this node.

        A Project keeps ``len(columns) / total base columns`` of the width;
        everything else inherits the minimum of its children (joins carry
        both sides' surviving columns, approximated by the mean).
        """
        sig = signatures(node).template
        cached = self._width_memo.get(sig)
        if cached is not None:
            return cached
        if isinstance(node, Scan):
            width = _FULL_WIDTH
        elif isinstance(node, Project):
            base_columns = self._base_column_count(node)
            width = min(
                _FULL_WIDTH, max(0.05, len(node.columns) / max(base_columns, 1))
            )
        else:
            fractions = [self.width_fraction(c) for c in node.children]
            width = sum(fractions) / len(fractions)
        self._width_memo[sig] = width
        return width

    def _base_column_count(self, node: Expression) -> int:
        total = 0
        for table in node.tables():
            if table in self.catalog:
                total += len(self.catalog.get(table).columns)
        return max(total, 1)

    def output_bytes(self, node: Expression) -> float:
        """Estimated size in bytes of this node's output (for stage sizing)."""
        rows = self.cardinality.estimate(node)
        row_bytes = 0.0
        tables = node.tables()
        for table in tables:
            if table in self.catalog:
                row_bytes += self.catalog.get(table).row_bytes
        if not tables or row_bytes == 0.0:
            row_bytes = 100.0
        return rows * row_bytes * self.width_fraction(node)
