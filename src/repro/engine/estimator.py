"""Cardinality estimation: the imperfect default and the ground truth.

``DefaultCardinalityEstimator`` is a textbook System-R style estimator:
uniformity and independence assumptions, ``1/distinct`` equality
selectivity, no correlation knowledge.  ``TrueCardinalityModel`` is the
simulator's ground truth: it honours column skew and deterministic
correlation factors the default estimator cannot see.

The gap between the two is the *controllable estimation error* that the
learned cardinality micromodels (:mod:`repro.core.cardinality`) close —
mirroring how [49] trains per-template models from observed runtime
cardinalities in SCOPE.
"""

from __future__ import annotations

import hashlib
from typing import Protocol

import numpy as np

from repro.engine.catalog import Catalog, ColumnStats
from repro.engine.signatures import signatures
from repro.engine.expr import (
    Aggregate,
    Expression,
    Filter,
    Join,
    Predicate,
    Project,
    Scan,
    Union,
)


class CardinalityModel(Protocol):
    """Anything that can map an expression to an output row count."""

    def estimate(self, expr: Expression) -> float:
        ...


def _uniform_fraction(pred: Predicate, col: ColumnStats) -> float:
    """Selectivity under uniformity (what the default estimator believes)."""
    span = col.high - col.low
    position = float(np.clip((pred.value - col.low) / span, 0.0, 1.0))
    if pred.op in ("<", "<="):
        return position
    if pred.op in (">", ">="):
        return 1.0 - position
    if pred.op == "=":
        return 1.0 / col.distinct
    # != is the complement of equality.
    return 1.0 - 1.0 / col.distinct


class _EstimatorBase:
    """Shared recursive walk; subclasses override the leaf selectivities.

    Estimates are memoized per strict signature: both concrete models
    are pure functions of (expression, catalog, seed), and the fleet
    analyses estimate the same shared subexpressions across thousands of
    jobs, so the recursive walk runs once per distinct subtree instead
    of once per reference to it.
    """

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        self._estimate_memo: dict[str, float] = {}

    def __getstate__(self) -> dict:
        # Keep process-pool payloads small: workers rebuild their own
        # memo instead of deserializing the parent's.
        state = dict(self.__dict__)
        state["_estimate_memo"] = {}
        return state

    # -- hooks ---------------------------------------------------------------
    def _predicate_selectivity(self, pred: Predicate, col: ColumnStats) -> float:
        raise NotImplementedError

    def _conjunction(self, selectivities: list[float], expr: Filter) -> float:
        raise NotImplementedError

    def _join_factor(self, expr: Join) -> float:
        raise NotImplementedError

    def _aggregate_rows(self, input_rows: float, expr: Aggregate) -> float:
        raise NotImplementedError

    # -- estimation -------------------------------------------------------------
    def estimate(self, expr: Expression) -> float:
        sig = signatures(expr).strict
        cached = self._estimate_memo.get(sig)
        if cached is not None:
            return cached
        value = self._estimate(expr)
        self._estimate_memo[sig] = value
        return value

    def _estimate(self, expr: Expression) -> float:
        if isinstance(expr, Scan):
            return float(self.catalog.get(expr.table).n_rows)
        if isinstance(expr, Project):
            return self.estimate(expr.child)
        if isinstance(expr, Filter):
            input_rows = self.estimate(expr.child)
            selectivities = [
                self._predicate_selectivity(p, self._resolve_column(expr, p))
                for p in expr.predicates
            ]
            return max(1.0, input_rows * self._conjunction(selectivities, expr))
        if isinstance(expr, Join):
            left = self.estimate(expr.left)
            right = self.estimate(expr.right)
            distinct = self._join_key_distinct(expr)
            base = left * right / max(distinct, 1.0)
            return max(1.0, base * self._join_factor(expr))
        if isinstance(expr, Aggregate):
            return max(1.0, self._aggregate_rows(self.estimate(expr.child), expr))
        if isinstance(expr, Union):
            return self.estimate(expr.left) + self.estimate(expr.right)
        raise TypeError(f"unknown expression node: {type(expr).__name__}")

    def selectivity(self, expr: Expression) -> float:
        """Output rows / input rows for a single-input node (1.0 for leaves)."""
        if not expr.children:
            return 1.0
        input_rows = sum(self.estimate(c) for c in expr.children)
        return self.estimate(expr) / max(input_rows, 1.0)

    # -- helpers --------------------------------------------------------------
    def _resolve_column(self, expr: Filter, pred: Predicate) -> ColumnStats:
        owner = self.catalog.owner_of_column(pred.column, expr.tables())
        if owner is None:
            # Unknown column: fall back to a generic mid-cardinality column.
            return ColumnStats(pred.column, distinct=100)
        return self.catalog.get(owner).column(pred.column)

    def _join_key_distinct(self, expr: Join) -> float:
        distincts = []
        for side, key in ((expr.left, expr.left_key), (expr.right, expr.right_key)):
            owner = self.catalog.owner_of_column(key, side.tables())
            if owner is not None:
                distincts.append(self.catalog.get(owner).column(key).distinct)
        if not distincts:
            return 100.0
        return float(max(distincts))


class DefaultCardinalityEstimator(_EstimatorBase):
    """Uniformity + independence: the optimizer's built-in estimator."""

    def _predicate_selectivity(self, pred: Predicate, col: ColumnStats) -> float:
        return _uniform_fraction(pred, col)

    def _conjunction(self, selectivities: list[float], expr: Filter) -> float:
        out = 1.0
        for s in selectivities:
            out *= s
        return out

    def _join_factor(self, expr: Join) -> float:
        return 1.0

    def _aggregate_rows(self, input_rows: float, expr: Aggregate) -> float:
        if not expr.group_by:
            return 1.0
        groups = 1.0
        for column in expr.group_by:
            owner = self.catalog.owner_of_column(column, expr.tables())
            distinct = (
                self.catalog.get(owner).column(column).distinct
                if owner is not None
                else 100
            )
            groups *= distinct
        return min(input_rows, groups)


def _stable_unit(seed: int, *parts: str) -> float:
    """Deterministic pseudo-random float in [0, 1) from string parts."""
    payload = f"{seed}|" + "|".join(parts)
    digest = hashlib.sha1(payload.encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


class TrueCardinalityModel(_EstimatorBase):
    """Ground-truth cardinalities with skew and correlation effects.

    Deterministic given ``seed``: the same (sub)expression always produces
    the same "actual" cardinality, which is what lets recurring jobs teach
    the micromodels anything.
    """

    def __init__(self, catalog: Catalog, seed: int = 0) -> None:
        super().__init__(catalog)
        self.seed = seed

    def _predicate_selectivity(self, pred: Predicate, col: ColumnStats) -> float:
        uniform = _uniform_fraction(pred, col)
        if pred.op in ("<", "<="):
            # Mass concentrated near ``low``: low cutoffs capture more rows.
            return float(uniform ** (1.0 / (1.0 + col.skew)))
        if pred.op in (">", ">="):
            return float(1.0 - (1.0 - uniform) ** (1.0 / (1.0 + col.skew)))
        if pred.op == "=":
            span = col.high - col.low
            position = float(np.clip((pred.value - col.low) / span, 0.0, 1.0))
            # Popular (low) values are up to (1 + 4*skew)x more frequent.
            boost = 1.0 + 4.0 * col.skew * (1.0 - position)
            return min(1.0, boost / col.distinct)
        return 1.0 - self._predicate_selectivity(
            Predicate(pred.column, "=", pred.value), col
        )

    def _conjunction(self, selectivities: list[float], expr: Filter) -> float:
        independent = 1.0
        for s in selectivities:
            independent *= s
        if len(selectivities) < 2:
            return independent
        # Correlated predicates: the true conjunctive selectivity sits
        # between the independent product and the minimum selectivity.
        columns = ",".join(sorted(p.column for p in expr.predicates))
        tables = ",".join(sorted(expr.tables()))
        weight = _stable_unit(self.seed, "corr", tables, columns)
        return independent ** (1.0 - 0.6 * weight)

    def _join_factor(self, expr: Join) -> float:
        tables = ",".join(sorted(expr.left.tables() | expr.right.tables()))
        keys = f"{expr.left_key}={expr.right_key}"
        u = _stable_unit(self.seed, "join", tables, keys)
        # Containment mismatch: true join output 0.25x-4x the estimate.
        return float(4.0 ** (2.0 * u - 1.0))

    def _aggregate_rows(self, input_rows: float, expr: Aggregate) -> float:
        if not expr.group_by:
            return 1.0
        default = DefaultCardinalityEstimator(self.catalog)._aggregate_rows(
            input_rows, expr
        )
        tables = ",".join(sorted(expr.tables()))
        u = _stable_unit(self.seed, "agg", tables, ",".join(expr.group_by))
        # Real group counts are usually far below the distinct-product bound.
        return min(input_rows, default * (0.05 + 0.95 * u))
