"""Relational algebra expressions (logical plans).

Expressions are immutable, hashable trees.  Immutability matters: the
same subexpression object can be shared by many jobs, signatures can be
cached, and rewrite rules return new trees instead of mutating.

The predicate language is deliberately tiny (column <op> literal,
conjunctions only).  That is all the recurring-job analysis in the paper
needs: SCOPE recurring jobs are "periodic runs of scripts with the same
operations but different predicate values" [51], i.e. the *structure* is
fixed and only literals move.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator

_COMPARISONS = ("<", "<=", ">", ">=", "=", "!=")


@dataclass(frozen=True)
class Predicate:
    """A single comparison: ``column <op> value``."""

    column: str
    op: str
    value: float

    def __post_init__(self) -> None:
        if self.op not in _COMPARISONS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def __str__(self) -> str:
        return f"{self.column} {self.op} {self.value:g}"


@dataclass(frozen=True)
class Expression:
    """Base class for all plan nodes."""

    @property
    def children(self) -> tuple["Expression", ...]:
        return ()

    def with_children(self, children: tuple["Expression", ...]) -> "Expression":
        if children:
            raise ValueError(f"{type(self).__name__} takes no children")
        return self

    def walk(self) -> Iterator["Expression"]:
        """Post-order traversal (children before parents)."""
        for child in self.children:
            yield from child.walk()
        yield self

    def subexpressions(self) -> Iterator["Expression"]:
        """All nodes except the root, post-order."""
        for node in self.walk():
            if node is not self:
                yield node

    @property
    def size(self) -> int:
        """Number of nodes in the tree (memoized: trees are immutable)."""
        cached = self.__dict__.get("_memo_size")
        if cached is None:
            cached = 1 + sum(child.size for child in self.children)
            object.__setattr__(self, "_memo_size", cached)
        return cached

    @property
    def depth(self) -> int:
        cached = self.__dict__.get("_memo_depth")
        if cached is None:
            if not self.children:
                cached = 1
            else:
                cached = 1 + max(child.depth for child in self.children)
            object.__setattr__(self, "_memo_depth", cached)
        return cached

    def tables(self) -> set[str]:
        """Base table names referenced anywhere in the tree."""
        return {node.table for node in self.walk() if isinstance(node, Scan)}


@dataclass(frozen=True)
class Scan(Expression):
    """Read a base table (or a materialized view registered as a table)."""

    table: str

    def __str__(self) -> str:
        return f"Scan({self.table})"


@dataclass(frozen=True)
class Filter(Expression):
    """Row selection: conjunct of predicates over one input."""

    child: Expression
    predicates: tuple[Predicate, ...]

    def __post_init__(self) -> None:
        if not self.predicates:
            raise ValueError("Filter requires at least one predicate")

    @property
    def children(self) -> tuple[Expression, ...]:
        return (self.child,)

    def with_children(self, children: tuple[Expression, ...]) -> "Filter":
        (child,) = children
        return replace(self, child=child)

    def __str__(self) -> str:
        preds = " AND ".join(str(p) for p in self.predicates)
        return f"Filter[{preds}]({self.child})"


@dataclass(frozen=True)
class Project(Expression):
    """Column selection (affects row width, not row count)."""

    child: Expression
    columns: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.columns:
            raise ValueError("Project requires at least one column")

    @property
    def children(self) -> tuple[Expression, ...]:
        return (self.child,)

    def with_children(self, children: tuple[Expression, ...]) -> "Project":
        (child,) = children
        return replace(self, child=child)

    def __str__(self) -> str:
        return f"Project[{','.join(self.columns)}]({self.child})"


@dataclass(frozen=True)
class Join(Expression):
    """Equi-join of two inputs on ``left_key = right_key``."""

    left: Expression
    right: Expression
    left_key: str
    right_key: str

    @property
    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def with_children(self, children: tuple[Expression, ...]) -> "Join":
        left, right = children
        return replace(self, left=left, right=right)

    def __str__(self) -> str:
        return f"Join[{self.left_key}={self.right_key}]({self.left}, {self.right})"


@dataclass(frozen=True)
class Aggregate(Expression):
    """Group-by aggregation over one input."""

    child: Expression
    group_by: tuple[str, ...]

    @property
    def children(self) -> tuple[Expression, ...]:
        return (self.child,)

    def with_children(self, children: tuple[Expression, ...]) -> "Aggregate":
        (child,) = children
        return replace(self, child=child)

    def __str__(self) -> str:
        return f"Aggregate[{','.join(self.group_by) or '*'}]({self.child})"


@dataclass(frozen=True)
class Union(Expression):
    """Bag union of two inputs."""

    left: Expression
    right: Expression

    @property
    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def with_children(self, children: tuple[Expression, ...]) -> "Union":
        left, right = children
        return replace(self, left=left, right=right)

    def __str__(self) -> str:
        return f"Union({self.left}, {self.right})"


def rewrite_bottom_up(expr: Expression, fn) -> Expression:
    """Rebuild ``expr`` applying ``fn`` to every node bottom-up.

    ``fn`` receives a node whose children are already rewritten and
    returns a (possibly identical) replacement node.
    """
    new_children = tuple(rewrite_bottom_up(child, fn) for child in expr.children)
    if new_children != expr.children:
        expr = expr.with_children(new_children)
    return fn(expr)


def replace_subexpression(
    expr: Expression, target: Expression, replacement: Expression
) -> Expression:
    """Return ``expr`` with every occurrence of ``target`` swapped out.

    Equality is structural (dataclass equality), which matches the
    signature-based view matching used by CloudViews: syntactically
    identical subtrees are interchangeable.
    """

    def swap(node: Expression) -> Expression:
        return replacement if node == target else node

    return rewrite_bottom_up(expr, swap)
