"""Tests for the control plane: registration, scheduling, health, reports."""

import json

import pytest

from repro.fabric import ControlPlane, RecordingDriver
from repro.obs import ObservabilityRuntime
from repro.telemetry import Metric


class TestRegistration:
    def test_register_validates_cadence(self):
        plane = ControlPlane()
        with pytest.raises(ValueError, match="cadence"):
            plane.register(RecordingDriver(), cadence_days=0)

    def test_register_rejects_duplicate_names(self):
        plane = ControlPlane()
        plane.register(RecordingDriver())
        with pytest.raises(ValueError, match="already registered"):
            plane.register(RecordingDriver())

    def test_register_rejects_stageless_drivers(self):
        from repro.fabric import PipelineDriver

        class Empty(PipelineDriver):
            name = "empty"

        with pytest.raises(TypeError):
            ControlPlane().register(Empty())

    def test_register_rejects_start_in_the_past(self):
        plane = ControlPlane()
        plane.register(RecordingDriver())
        plane.run_days(2)
        with pytest.raises(ValueError, match="before fabric day"):
            plane.register(RecordingDriver(name="late"), start_day=1)

    def test_service_names_in_registration_order(self):
        plane = ControlPlane()
        plane.register(RecordingDriver(name="a"))
        plane.register(RecordingDriver(name="b"))
        assert plane.service_names() == ["a", "b"]


class TestScheduling:
    def test_daily_cadence_ticks_once_per_day(self):
        plane = ControlPlane()
        binding = plane.register(RecordingDriver())
        plane.run_days(4)
        assert binding.ticks == 4
        days = [d for s, d in binding.driver.calls if s == "observe"]
        assert days == [0, 1, 2, 3]

    def test_slower_cadence_skips_days(self):
        plane = ControlPlane()
        binding = plane.register(RecordingDriver(), cadence_days=2.0)
        plane.run_days(5)
        assert [d for s, d in binding.driver.calls if s == "observe"] == [0, 2, 4]

    def test_start_day_delays_first_tick(self):
        plane = ControlPlane()
        binding = plane.register(RecordingDriver(), start_day=2)
        plane.run_days(4)
        assert [d for s, d in binding.driver.calls if s == "observe"] == [2, 3]

    def test_services_interleave_in_registration_order_per_day(self):
        from repro.fabric import PipelineDriver

        order = []

        class Logger(PipelineDriver):
            def __init__(self, name):
                self.name = name

            def observe(self, ctx):
                order.append((self.name, ctx.day))

        plane = ControlPlane()
        a = plane.register(Logger("a"))
        b = plane.register(Logger("b"))
        plane.run_days(2)
        # Each day: a ticks before b (registration order), never by heap luck.
        assert order == [("a", 0), ("b", 0), ("a", 1), ("b", 1)]
        assert a.ticks == b.ticks == 2

    def test_run_days_validates(self):
        with pytest.raises(ValueError):
            ControlPlane().run_days(0)

    def test_incremental_runs_equal_one_shot(self):
        one = ControlPlane()
        one.register(RecordingDriver())
        one.run_days(4)
        two = ControlPlane()
        two.register(RecordingDriver())
        two.run_days(1)
        two.run_days(3)
        assert one.report_bytes() == two.report_bytes()
        assert one.bindings[0].driver.calls == two.bindings[0].driver.calls


class TestReports:
    def test_final_report_shape(self):
        plane = ControlPlane()
        plane.register(RecordingDriver())
        plane.run_days(2)
        report = plane.final_report()
        assert report["days"] == 2
        assert report["services"]["recorder"]["ticks"] == 2
        assert report["services"]["recorder"]["report"] == {"calls": 6}
        assert "lifecycle" in report and "health" in report

    def test_report_bytes_is_canonical_json(self):
        plane = ControlPlane()
        plane.register(RecordingDriver())
        plane.run_days(1)
        payload = json.loads(plane.report_bytes())
        assert payload["days"] == 1

    def test_render_health_is_a_table(self):
        plane = ControlPlane()
        plane.register(RecordingDriver())
        plane.run_days(1)
        text = plane.render_health()
        assert "recorder.observe" in text
        assert "total" in text


class TestObservability:
    def test_stage_spans_and_health_events_exported(self):
        obs = ObservabilityRuntime()
        plane = ControlPlane(obs=obs)
        plane.register(RecordingDriver())
        plane.run_days(2)
        obs.flush()
        span_names = {s.name for s in obs.tracer.spans}
        assert "fabric.recorder.tick" in span_names
        assert "fabric.recorder.observe" in span_names
        assert "fabric.run" in span_names
        ok_points = (
            obs.query()
            .metric(Metric.EVENT_COUNT)
            .where(layer="fabric", kind="stage_ok")
            .points()
        )
        assert len(ok_points) == 6  # 3 stages x 2 days

    def test_bind_late_attaches_runtime(self):
        plane = ControlPlane()
        plane.register(RecordingDriver())
        plane.run_days(1)
        obs = ObservabilityRuntime()
        plane.bind(obs)
        plane.run_days(1)
        assert any(s.name == "fabric.run" for s in obs.tracer.spans)
