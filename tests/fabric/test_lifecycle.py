"""Tests for the fabric's single model-deployment path."""

import pytest

from repro.core.guardrails import RegressionGuardrail
from repro.fabric import ModelLifecycle
from repro.ml import ModelRegistry, ModelStage


@pytest.fixture
def lifecycle():
    return ModelLifecycle(ModelRegistry(rng=0), min_samples=3)


class TestPropose:
    def test_first_proposal_promotes_directly(self, lifecycle):
        action = lifecycle.propose("m", "model-a", candidate_metric=1.0, day=2)
        assert action.action == "promote"
        assert action.reason == "initial"
        assert lifecycle.registry.production("m").model == "model-a"
        assert [a.action for a in lifecycle.actions] == ["shadow", "promote"]

    def test_regressing_candidate_vetoed(self, lifecycle):
        lifecycle.propose("m", "good", candidate_metric=1.0)
        action = lifecycle.propose(
            "m", "bad", candidate_metric=2.0, baseline_metric=1.0, day=1
        )
        assert action.action == "veto"
        assert lifecycle.registry.flighting("m") is None
        assert lifecycle.summary()["guardrail_vetoes"] == 1

    def test_improving_candidate_starts_flight(self, lifecycle):
        lifecycle.propose("m", "v1", candidate_metric=1.0)
        action = lifecycle.propose(
            "m", "v2", candidate_metric=0.5, baseline_metric=1.0, day=1
        )
        assert action.action == "flight"
        assert lifecycle.registry.flighting("m").model == "v2"

    def test_second_proposal_during_flight_vetoed(self, lifecycle):
        lifecycle.propose("m", "v1", candidate_metric=1.0)
        lifecycle.propose("m", "v2", candidate_metric=0.5, baseline_metric=1.0)
        action = lifecycle.propose(
            "m", "v3", candidate_metric=0.4, baseline_metric=1.0
        )
        assert action.action == "veto"
        assert "already active" in action.reason
        assert lifecycle.registry.flighting("m").model == "v2"

    def test_baseline_from_production_metrics(self, lifecycle):
        lifecycle.propose("m", "v1", candidate_metric=1.0)
        record = lifecycle.registry.production("m")
        lifecycle.registry.record_metric("m", record.version, 1.0)
        action = lifecycle.propose("m", "v2", candidate_metric=0.5)
        assert action.action == "flight"

    def test_no_baseline_anywhere_raises(self, lifecycle):
        lifecycle.propose("m", "v1", candidate_metric=1.0)
        with pytest.raises(ValueError, match="baseline"):
            lifecycle.propose("m", "v2", candidate_metric=0.5)


class TestFlightSettlement:
    def _start_flight(self, lifecycle):
        lifecycle.propose("m", "v1", candidate_metric=1.0)
        lifecycle.propose("m", "v2", candidate_metric=0.5, baseline_metric=1.0)

    def test_winning_flight_promotes(self, lifecycle):
        self._start_flight(lifecycle)
        registry = lifecycle.registry
        prod = registry.production("m")
        cand = registry.flighting("m")
        for _ in range(3):
            registry.record_metric("m", prod.version, 1.0)
            registry.record_metric("m", cand.version, 0.2)
        assert lifecycle.evaluate("m", day=4) is True
        assert registry.production("m").version == cand.version
        assert lifecycle.actions[-1].action == "promote"
        assert lifecycle.actions[-1].day == 4

    def test_losing_flight_aborts(self, lifecycle):
        self._start_flight(lifecycle)
        registry = lifecycle.registry
        prod = registry.production("m")
        cand = registry.flighting("m")
        for _ in range(3):
            registry.record_metric("m", prod.version, 0.2)
            registry.record_metric("m", cand.version, 1.0)
        assert lifecycle.evaluate("m") is False
        assert registry.production("m").version == prod.version
        assert registry.get("m", cand.version).stage is ModelStage.RETIRED

    def test_underfed_flight_stays_open(self, lifecycle):
        self._start_flight(lifecycle)
        assert lifecycle.evaluate("m") is None
        assert lifecycle.registry.flighting("m") is not None

    def test_evaluate_without_flight_is_none(self, lifecycle):
        lifecycle.propose("m", "v1", candidate_metric=1.0)
        assert lifecycle.evaluate("m") is None

    def test_observe_metric_lands_on_serving_record(self, lifecycle):
        lifecycle.propose("m", "v1", candidate_metric=1.0)
        lifecycle.observe_metric("m", 0.7)
        assert lifecycle.registry.production("m").metrics == [0.7]


class TestRollback:
    def test_rollback_records_action(self, lifecycle):
        lifecycle.propose("m", "v1", candidate_metric=1.0)
        version = lifecycle.shadow("m", "v2")
        lifecycle.registry.promote("m", version)
        restored = lifecycle.rollback("m", day=5, reason="regression")
        assert lifecycle.registry.production("m").version == restored
        assert lifecycle.actions[-1].action == "rollback"

    def test_impossible_rollback_becomes_veto_not_crash(self, lifecycle):
        lifecycle.propose("m", "v1", candidate_metric=1.0)
        assert lifecycle.rollback("m") is None
        assert lifecycle.actions[-1].action == "veto"
        assert "rollback refused" in lifecycle.actions[-1].reason


class TestReporting:
    def test_summary_counts_actions(self, lifecycle):
        lifecycle.propose("a", "m1", candidate_metric=1.0)
        lifecycle.propose("b", "m2", candidate_metric=1.0)
        summary = lifecycle.summary()
        assert summary["actions"] == {"shadow": 2, "promote": 2}
        assert set(summary["serving"]) == {"a", "b"}

    def test_actions_replay_as_obs_events(self, lifecycle):
        from repro.obs import ObservabilityRuntime

        lifecycle.propose("m", "v1", candidate_metric=1.0, day=3)
        obs = ObservabilityRuntime()
        for action in lifecycle.actions:
            obs.replay(action)
        kinds = [e.kind for e in obs.events.events]
        assert kinds == ["shadow", "promote"]
        assert all(e.layer == "fabric" for e in obs.events.events)

    def test_custom_guardrail_tolerance_respected(self):
        lenient = ModelLifecycle(
            ModelRegistry(rng=0), guardrail=RegressionGuardrail(tolerance=0.5)
        )
        lenient.propose("m", "v1", candidate_metric=1.0)
        action = lenient.propose(
            "m", "v2", candidate_metric=1.3, baseline_metric=1.0
        )
        assert action.action == "flight"  # within the 50% tolerance
