"""Fabric ownership of the persistent worker pool.

The control plane owns the pool's lifecycle: workers start lazily on the
first parallel dispatch, survive across ticks and simulated days, are
never checkpointed, and stop on ``close()``.  Resume after restore must
re-arm the pool transparently and still report byte-identically.
"""

import os
import pickle
from dataclasses import dataclass, field

import pytest

from repro.fabric import ControlPlane
from repro.fabric.pipeline import PipelineDriver, TickContext
from repro.fabric.store import checkpoint_bytes_v1, restore_v1
from repro.parallel import FORCE_ENV, pmap, shutdown_pool


def _cube(x: int) -> int:
    return x**3


def _worker_pid(x: int) -> int:
    return os.getpid()


@dataclass
class PoolDriver(PipelineDriver):
    """Driver whose tick fans work across the plane's pool."""

    name: str = "pooluser"
    total: int = 0
    pids: list[int] = field(default_factory=list)  # never reported

    def observe(self, ctx: TickContext) -> None:
        values = pmap(
            _cube, range(8 * (ctx.day + 1)), workers=2, chunksize=2
        )
        self.total += sum(values)
        self.pids.extend(
            pmap(_worker_pid, range(4), workers=2, chunksize=1)
        )

    def final_report(self) -> dict:
        # PIDs stay out: reports must be byte-identical across resumes.
        return {"total": self.total}


@pytest.fixture
def force_pools(monkeypatch):
    monkeypatch.setenv(FORCE_ENV, "1")


class TestPoolOwnership:
    def test_plane_holds_the_shared_pool_cold(self):
        shutdown_pool()  # earlier tests may have warmed the shared pool
        with ControlPlane() as plane:
            assert plane.pool is ControlPlane().pool  # one shared pool
            assert not plane.pool.started  # lazy: no dispatch yet

    def test_pool_survives_across_fabric_days(self, force_pools):
        driver = PoolDriver()
        with ControlPlane() as plane:
            plane.register(driver)
            plane.run_days(1)
            generation = plane.pool.generation
            plane.run_days(1)
            assert plane.pool.generation == generation  # no restart
            # Both days drew from one worker set: at most ``width``
            # distinct PIDs ever existed, and never the parent's.
            assert len(set(driver.pids)) <= plane.pool.width
            assert os.getpid() not in set(driver.pids)

    def test_close_stops_the_pool(self, force_pools):
        plane = ControlPlane()
        plane.register(PoolDriver())
        plane.run_days(1)
        assert plane.pool.started
        plane.close()
        assert not plane.pool.started

    def test_context_manager_closes_on_exit(self, force_pools):
        with ControlPlane() as plane:
            plane.register(PoolDriver())
            plane.run_days(1)
            assert plane.pool.started
        assert not plane.pool.started


class TestCheckpointExclusion:
    def test_checkpoint_bytes_never_mention_the_pool(self, force_pools):
        plane = ControlPlane()
        plane.register(PoolDriver())
        plane.run_days(1)
        blob = checkpoint_bytes_v1(plane)  # would fail pickling an executor
        assert b"WorkerPool" not in blob
        plane.close()

    def test_restore_rearms_the_pool_lazily(self, force_pools):
        plane = ControlPlane()
        plane.register(PoolDriver())
        plane.run_days(1)
        blob = checkpoint_bytes_v1(plane)
        plane.close()  # interrupted: workers are gone

        restored = restore_v1(pickle.loads(blob))
        assert restored.pool is plane.pool  # same shared handle...
        assert not restored.pool.started  # ...cold after the interrupt
        restored.run_days(1)  # first dispatch re-arms it
        assert restored.pool.started
        restored.close()

    def test_resumed_run_reports_byte_identical(self, force_pools):
        straight = ControlPlane()
        straight.register(PoolDriver())
        straight.run_days(3)
        expected = straight.report_bytes()
        straight.close()

        interrupted = ControlPlane()
        interrupted.register(PoolDriver())
        interrupted.run_days(1)
        blob = checkpoint_bytes_v1(interrupted)
        interrupted.close()
        restored = restore_v1(pickle.loads(blob))
        restored.run_days(2)
        assert restored.report_bytes() == expected
        restored.close()


class TestSerialFabricStaysSerial:
    def test_pool_never_starts_without_force(self, monkeypatch):
        # Under pytest, resolve_workers guards to serial: a whole fabric
        # run must not start worker processes.
        monkeypatch.delenv(FORCE_ENV, raising=False)
        shutdown_pool()
        with ControlPlane() as plane:
            plane.register(PoolDriver())
            plane.run_days(2)
            assert not plane.pool.started
