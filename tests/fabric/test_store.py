"""The checkpoint store: delta chains, durable schedules, compaction.

Covers the @2 format's distinguishing behaviours — dirty-tracked delta
frames, frozen-attr tokenization, chain compaction — plus the durable
schedule rows: a plane killed mid-backoff must resume at the pending
attempt (never attempt one), and a paused service must stay paused
across a restore.
"""

import json

import pytest

from repro.fabric import (
    CheckpointStore,
    ControlPlane,
    FaultInjector,
    RecordingDriver,
    RetryPolicy,
)
from repro.fabric.pipeline import PipelineDriver, TickContext


class FrozenWorldDriver(PipelineDriver):
    """Driver with a bulky immutable input world and references into it."""

    name = "frozen"
    dirty_aware = True
    frozen_attrs = ("world",)

    def __init__(self):
        self.world = {i: list(range(500)) for i in range(20)}
        self.seen = []

    def observe(self, ctx: TickContext) -> None:
        self.mark_dirty()
        self.seen.append(ctx.day)
        self.held = self.world[ctx.day % 20]  # a reference INTO the world

    def final_report(self) -> dict:
        return {"seen": len(self.seen)}


class TestDeltaChain:
    def test_base_then_deltas(self, tmp_path):
        plane = ControlPlane()
        plane.register(RecordingDriver())
        store = CheckpointStore(tmp_path / "store")
        kinds = []
        for _ in range(3):
            plane.run_days(1)
            kinds.append(store.save(plane).kind)
        assert kinds == ["base", "delta", "delta"]
        frames = store.frames()
        assert [f["kind"] for f in frames] == kinds
        assert [f["seq"] for f in frames] == [0, 1, 2]

    def test_clean_service_skipped_in_delta(self, tmp_path):
        # A dirty-aware driver that stops mutating drops out of deltas.
        plane = ControlPlane()
        driver = FrozenWorldDriver()
        plane.register(driver)
        store = CheckpointStore(tmp_path / "store")
        plane.run_days(1)
        store.save(plane)
        result = store.save(plane)  # nothing ran since the last save
        assert result.kind == "delta"
        assert result.saved == []
        assert result.clean == ["frozen"]

    def test_frozen_world_not_reserialized_in_deltas(self, tmp_path):
        plane = ControlPlane()
        plane.register(FrozenWorldDriver())
        store = CheckpointStore(tmp_path / "store")
        plane.run_days(1)
        base = store.save(plane)
        plane.run_days(1)
        delta = store.save(plane)
        # The world is ~20x500 ints; the delta tokenizes it away.
        assert delta.bytes_written < base.bytes_written / 5
        restored = CheckpointStore.load(tmp_path / "store")
        driver = restored.bindings[0].driver
        assert driver.world == {i: list(range(500)) for i in range(20)}
        # References into the frozen world resolve to the same objects.
        assert driver.held is driver.world[1 % 20]
        assert driver.seen == [0, 1]

    def test_adopting_an_existing_chain_appends(self, tmp_path):
        plane = ControlPlane()
        plane.register(RecordingDriver())
        store = CheckpointStore(tmp_path / "store")
        plane.run_days(1)
        store.save(plane)
        # A second store instance (a restarted process) continues it.
        adopted = CheckpointStore(tmp_path / "store")
        plane.run_days(1)
        assert adopted.save(plane).kind == "delta"
        assert [f["seq"] for f in adopted.frames()] == [0, 1]


class TestCompaction:
    def test_compact_collapses_to_one_base(self, tmp_path):
        plane = ControlPlane()
        plane.register(FrozenWorldDriver())
        plane.register(RecordingDriver())
        store = CheckpointStore(tmp_path / "store")
        for _ in range(4):
            plane.run_days(1)
            store.save(plane)
        assert len(store.frames()) == 4
        removed = store.compact()
        assert removed == 3
        frames = store.frames()
        assert [f["kind"] for f in frames] == ["base"]
        # Nothing was lost: the compacted chain restores the same state,
        # including the frozen world stripped from delta frames.
        restored = CheckpointStore.load(tmp_path / "store")
        assert restored.day == 4
        driver = restored.bindings[0].driver
        assert driver.seen == [0, 1, 2, 3]
        assert driver.held is driver.world[3 % 20]

    def test_chain_keeps_growing_after_compact(self, tmp_path):
        plane = ControlPlane()
        plane.register(RecordingDriver())
        store = CheckpointStore(tmp_path / "store")
        for _ in range(3):
            plane.run_days(1)
            store.save(plane)
        store.compact()
        plane.run_days(1)
        assert store.save(plane).kind == "delta"
        assert len(store.frames()) == 2
        assert CheckpointStore.load(tmp_path / "store").day == 4

    def test_compact_on_single_frame_is_noop(self, tmp_path):
        plane = ControlPlane()
        plane.register(RecordingDriver())
        plane.run_days(1)
        store = CheckpointStore(tmp_path / "store")
        store.save(plane)
        assert store.compact() == 0
        assert len(store.frames()) == 1


class TestDurableSchedule:
    def test_schedule_sidecar_is_readable_json(self, tmp_path):
        plane = ControlPlane()
        plane.register(RecordingDriver())
        plane.run_days(2)
        store = CheckpointStore(tmp_path / "store")
        store.save(plane)
        payload = json.loads(store.schedule_path.read_text())
        (row,) = payload["services"]
        assert row["name"] == "recorder"
        assert row["ticks"] == 2
        assert row["retries_remaining"] == 3
        (record,) = store.schedule()
        assert record.name == "recorder"
        assert record.next_due == pytest.approx(2.0)

    def test_resume_mid_backoff_continues_at_pending_attempt(self, tmp_path):
        # Two failures on day 1 push attempt 3's retry to t ~= 2.8 —
        # past the end of run_days(2).  The kill point is mid-backoff.
        def build():
            injector = FaultInjector()
            injector.inject("recorder", "observe", day=1, times=2)
            plane = ControlPlane(
                retry=RetryPolicy(backoff_base=0.6), injector=injector
            )
            plane.register(RecordingDriver())
            return plane

        straight = build()
        straight.run_days(4)

        interrupted = build()
        interrupted.run_days(2)
        record = interrupted.bindings[0].record
        assert record.retry is not None and record.retry.attempt == 3
        store = CheckpointStore(tmp_path / "store")
        store.save(interrupted)

        restored = CheckpointStore.load(tmp_path / "store")
        pending = restored.bindings[0].record.retry
        assert pending is not None
        assert pending.attempt == 3  # not attempt 0/1: no lost work
        assert pending.resume_at == pytest.approx(record.retry.resume_at)
        restored.run_days(2)
        assert restored.report_bytes() == straight.report_bytes()
        bucket = restored.health.counters[("recorder", "observe")]
        # Day 1's observe succeeded on its third attempt, exactly once.
        assert bucket["retried"] == 1
        assert bucket["degraded"] == 0
        assert bucket["attempts"] == 5  # 2 clean days + 3 attempts on day 1
        days = [d for s, d in restored.bindings[0].driver.calls if s == "observe"]
        # Day 2's slot passed while the backoff was pending: skipped,
        # exactly as in the uninterrupted run.
        assert days == [0, 1, 3]

    def test_paused_service_stays_paused_across_restore(self, tmp_path):
        plane = ControlPlane()
        plane.register(RecordingDriver())
        plane.run_days(1)
        plane.pause("recorder")
        store = CheckpointStore(tmp_path / "store")
        store.save(plane)

        restored = CheckpointStore.load(tmp_path / "store")
        assert restored.bindings[0].paused
        restored.run_days(2)
        driver = restored.bindings[0].driver
        assert [d for s, d in driver.calls if s == "observe"] == [0]
        restored.unpause("recorder")
        restored.run_days(1)
        assert [d for s, d in driver.calls if s == "observe"] == [0, 3]


class TestFormatNegotiation:
    def test_v1_store_writes_legacy_format(self, tmp_path):
        import pickle

        plane = ControlPlane()
        plane.register(RecordingDriver())
        plane.run_days(2)
        store = CheckpointStore(tmp_path / "legacy.ckpt", version=1)
        result = store.save(plane)
        assert result.kind == "full"
        payload = pickle.loads((tmp_path / "legacy.ckpt").read_bytes())
        assert payload["format"] == "repro.fabric/checkpoint@1"
        restored = CheckpointStore.load(tmp_path / "legacy.ckpt")
        assert restored.day == 2

    def test_unknown_version_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown checkpoint version"):
            CheckpointStore(tmp_path / "store", version=3)

    def test_delta_requires_a_base(self, tmp_path):
        plane = ControlPlane()
        plane.register(RecordingDriver())
        plane.run_days(1)
        store = CheckpointStore(tmp_path / "store")
        with pytest.raises(ValueError, match="no base snapshot"):
            store.delta(plane)


class TestFormatMigration:
    """A legacy @1 pickle upgrades to a @2 chain without behaviour drift."""

    FLEET = ("moneyball", "doppler")

    def _fleet(self, days: int) -> ControlPlane:
        from repro.fabric import FleetConfig, build_fleet

        plane = ControlPlane()
        build_fleet(plane, FleetConfig(seed=0, days=days, include=self.FLEET))
        return plane

    def test_v1_resume_saved_as_v2_chain_is_byte_identical(self, tmp_path):
        # The uninterrupted twin: seed-0 fleet straight through 4 days.
        straight = self._fleet(4)
        straight.run_days(4)
        expected = straight.report_bytes()
        straight.close()

        # Day-2 state captured in the legacy single-pickle format.
        fabric = self._fleet(4)
        fabric.run_days(2)
        CheckpointStore(tmp_path / "legacy.ckpt", version=1).save(fabric)
        fabric.close()

        # Migrate: load the @1 pickle, resume, checkpoint as a @2 chain.
        resumed = CheckpointStore.load(tmp_path / "legacy.ckpt")
        chain = CheckpointStore(tmp_path / "migrated")
        resumed.run_days(1)
        chain.save(resumed)
        resumed.run_days(1)
        chain.save(resumed)
        assert [f["kind"] for f in chain.frames()] == ["base", "delta"]
        assert resumed.report_bytes() == expected
        resumed.close()

        # The migrated chain restores to the same byte-identical report.
        restored = CheckpointStore.load(tmp_path / "migrated")
        assert restored.report_bytes() == expected
        restored.close()

    def test_pre_tuner_core_state_still_restores(self, tmp_path):
        # Checkpoints written before the tuner rode along lack the
        # "tuner" core key; load must tolerate its absence.
        import pickle

        plane = ControlPlane()
        plane.register(RecordingDriver())
        plane.run_days(1)
        store = CheckpointStore(tmp_path / "legacy.ckpt", version=1)
        store.save(plane)
        payload = pickle.loads((tmp_path / "legacy.ckpt").read_bytes())
        assert "tuner" not in payload["state"]  # @1 stays bit-compatible
        restored = CheckpointStore.load(tmp_path / "legacy.ckpt")
        assert restored.day == 1
