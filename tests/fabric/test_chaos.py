"""Chaos harness: SIGKILL a fabric mid-day, resume, byte-identical.

These are the acceptance tests for the durable schedule state — each
spawns three real subprocesses (baseline, victim, resumed), kills the
victim with ``kill -9`` at a deterministic tick that lands mid-day
(some services ticked, some not), and requires the resumed run's final
report to match the uninterrupted baseline byte for byte.
"""

import pytest

from repro.fabric import run_chaos
from repro.fabric.chaos import make_kill_hook

DAYS = 2
#: 7 services tick per day: tick 10 lands mid-day-1 with three services
#: ticked and four still pending — the state an end-of-day checkpoint
#: cannot represent.
KILL_TICK = 10


class TestKillHook:
    def test_rejects_nonpositive_kill_tick(self):
        with pytest.raises(ValueError, match="kill_tick"):
            make_kill_hook(0)


class TestChaosEndToEnd:
    def test_serial_kill_mid_day_resumes_byte_identical(self, tmp_path):
        result = run_chaos(days=DAYS, kill_tick=KILL_TICK, workdir=tmp_path)
        assert result.victim_returncode < 0  # died by signal, not exit()
        # The per-tick chain covered every completed tick at kill time.
        assert result.frames >= KILL_TICK
        assert result.identical, result.summary()

    def test_parallel_workers_resume_byte_identical(self, tmp_path):
        result = run_chaos(
            days=DAYS, kill_tick=KILL_TICK, workers=2, workdir=tmp_path
        )
        assert result.victim_returncode < 0
        assert result.identical, result.summary()

    def test_injected_faults_survive_the_kill(self, tmp_path):
        # A fault mid-retry at the kill point must resume mid-backoff,
        # not restart at attempt one (the injector state is durable).
        result = run_chaos(
            days=DAYS,
            kill_tick=KILL_TICK,
            faults=("seagull:recommend:1:1", "doppler:recommend:0:1"),
            workdir=tmp_path,
        )
        assert result.victim_returncode < 0
        assert result.identical, result.summary()
