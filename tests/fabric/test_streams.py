"""Streaming worlds on the fabric: sources, fleet wiring, resume."""

import pickle

import pytest

from repro.fabric import (
    STREAMING_THRESHOLD,
    ControlPlane,
    FleetConfig,
    StreamingJobSource,
    build_fleet,
)
from repro.fabric.fleet import PeregrineDriver
from repro.workloads.scope import ScopeWorkloadConfig, ScopeWorkloadGenerator


class TestStreamingJobSource:
    def test_matches_eager_generator(self):
        source = StreamingJobSource(
            seed=3, days=3, jobs_per_day=50,
            config=ScopeWorkloadConfig(n_recurring_templates=30),
        )
        eager = ScopeWorkloadGenerator(
            rng=3, config=ScopeWorkloadConfig(n_recurring_templates=30)
        ).generate(n_days=3)
        for day in range(3):
            assert source.get(day) == list(eager.by_day(day))

    def test_day_cache_capacity_one(self):
        source = StreamingJobSource(seed=0, days=3, jobs_per_day=50)
        assert source.get(1) is source.get(1)
        first = source.get(1)
        source.get(2)
        assert source.get(1) is not first  # regenerated, not hoarded

    def test_out_of_range_days_empty(self):
        source = StreamingJobSource(seed=0, days=2, jobs_per_day=50)
        assert source.get(2, []) == []
        assert source.get(-1, []) == []
        assert source.get(5) is None

    def test_pairs_view_head_limit(self):
        source = StreamingJobSource(seed=0, days=2, jobs_per_day=50)
        pairs = source.pairs(head=4)
        day = pairs.get(0)
        assert len(day) == 4
        full = [(j.job_id, j.plan) for j in source.get(0)[:4]]
        assert day == full
        assert pairs.get(9, []) == []

    def test_pickle_round_trip_replays(self):
        source = StreamingJobSource(seed=5, days=3, jobs_per_day=50)
        want = [j.job_id for j in source.get(2)]
        clone = pickle.loads(pickle.dumps(source))
        assert [j.job_id for j in clone.get(2)] == want

    def test_rejects_zero_days(self):
        with pytest.raises(ValueError):
            StreamingJobSource(seed=0, days=0, jobs_per_day=10)


class TestFleetStreaming:
    def test_resolve_streaming_threshold(self):
        assert not FleetConfig().resolve_streaming()
        assert FleetConfig(
            jobs_per_day=STREAMING_THRESHOLD
        ).resolve_streaming()
        assert FleetConfig(jobs_per_day=8, streaming=True).resolve_streaming()
        assert not FleetConfig(
            jobs_per_day=10**6, streaming=False
        ).resolve_streaming()

    def test_streaming_fleet_runs_and_ingests_full_days(self, tmp_path):
        config = FleetConfig(
            days=2,
            jobs_per_day=1200,
            include=("peregrine", "steering"),
            streaming=True,
            repo_memory_budget_mb=1,
            repo_spill_dir=str(tmp_path / "chunks"),
        )
        plane = ControlPlane()
        build_fleet(plane, config)
        plane.run_days(2)
        driver = next(
            b.driver
            for b in plane.bindings
            if isinstance(b.driver, PeregrineDriver)
        )
        # the repository saw the full stream, not the service head
        assert len(driver.repo) > 2 * config.service_jobs_per_day
        assert driver.repo.days() == [0, 1]
        assert driver.repo.chunk_stats()["spilled_chunks"] >= 1
        steering = next(
            b.driver for b in plane.bindings if b.name == "steering"
        )
        # the plan-facing service sampled only each day's head
        assert steering.jobs_seen == 2 * config.service_jobs_per_day
        plane.close()

    def test_streaming_checkpoint_resume_identical(self, tmp_path):
        def run(resume_from=None):
            config = FleetConfig(
                days=3,
                jobs_per_day=600,
                include=("peregrine", "steering"),
                streaming=True,
            )
            plane = ControlPlane()
            build_fleet(plane, config)
            if resume_from is None:
                plane.run_days(3)
            else:
                plane.run_days(1)
                blob = plane.checkpoint(tmp_path / "ckpt.bin")
                plane.close()
                plane = ControlPlane.restore(tmp_path / "ckpt.bin")
                plane.run_days(2)
            report = plane.report_bytes()
            plane.close()
            return report

        assert run() == run(resume_from="ckpt")


class TestDayBatchSource:
    def test_day_batch_cached_and_off_range_none(self):
        source = StreamingJobSource(
            seed=0, days=2, jobs_per_day=50, overlap=False
        )
        batch = source.day_batch(0)
        assert batch is source.day_batch(0)
        assert source.day_batch(2) is None
        assert source.day_batch(-1) is None

    def test_pairs_read_off_the_batch(self):
        source = StreamingJobSource(
            seed=4, days=2, jobs_per_day=60, overlap=False
        )
        legacy = ScopeWorkloadGenerator(
            rng=4, config=source.config
        )
        for day in range(2):
            pairs = source.pairs(head=10).get(day)
            jobs = legacy.day_jobs(day)[:10]
            assert [job_id for job_id, _plan in pairs] == [
                j.job_id for j in jobs
            ]
            assert [plan for _job_id, plan in pairs] == [
                j.plan for j in jobs
            ]
        assert source.pairs(head=10).get(5, "missing") == "missing"

    def test_overlap_fallback_is_local_and_identical(self, monkeypatch):
        # Pool submission failing must silently fall back to local
        # generation with the same bits.
        import repro.fabric.streams as streams

        def broken_pool():
            raise RuntimeError("no pool in this test")

        monkeypatch.setattr(streams, "get_pool", broken_pool)
        forced = StreamingJobSource(
            seed=6, days=2, jobs_per_day=50, overlap=True
        )
        plain = StreamingJobSource(
            seed=6, days=2, jobs_per_day=50, overlap=False
        )
        for day in range(2):
            theirs = plain.day_batch(day)
            mine = forced.day_batch(day)
            assert mine.job_ids == theirs.job_ids
            assert mine.sig_names == theirs.sig_names
        assert forced.prefetch_hits == 0

    def test_overlap_auto_disabled_under_pytest(self):
        # resolve_workers(2) is serial under pytest unless forced, so
        # the auto mode must not spin up a pool inside the suite.
        import os

        source = StreamingJobSource(seed=0, days=2, jobs_per_day=50)
        if not os.environ.get("REPRO_PARALLEL_FORCE"):
            assert not source.overlap_enabled()

    def test_pickle_drops_pending_and_caches(self):
        source = StreamingJobSource(
            seed=1, days=2, jobs_per_day=50, overlap=False
        )
        source.day_batch(0)
        clone = pickle.loads(pickle.dumps(source))
        assert clone._batch_cache is None
        assert clone._pending is None
        assert clone.day_batch(0).job_ids == source.day_batch(0).job_ids

    @pytest.mark.skipif(
        "REPRO_PARALLEL_FORCE" not in __import__("os").environ,
        reason="needs the real worker pool (REPRO_PARALLEL_FORCE=1)",
    )
    def test_real_pool_prefetch_identical_and_engaged(self):
        plain = StreamingJobSource(
            seed=2, days=3, jobs_per_day=1200, overlap=False
        )
        overlapped = StreamingJobSource(
            seed=2, days=3, jobs_per_day=1200, overlap=True
        )
        for day in range(3):
            theirs = plain.day_batch(day)
            mine = overlapped.day_batch(day)
            assert mine.job_ids == theirs.job_ids
            assert mine.sig_names == theirs.sig_names
            assert list(mine.deps_map.items()) == list(
                theirs.deps_map.items()
            )
        assert overlapped.prefetch_hits >= 1

    @pytest.mark.skipif(
        "REPRO_PARALLEL_FORCE" not in __import__("os").environ,
        reason="needs the real worker pool (REPRO_PARALLEL_FORCE=1)",
    )
    def test_checkpoint_resume_identical_under_overlap(self, tmp_path):
        def run(resume: bool):
            config = FleetConfig(
                days=3,
                jobs_per_day=1200,
                include=("peregrine", "steering"),
                streaming=True,
                overlap_prefetch=True,
            )
            plane = ControlPlane()
            build_fleet(plane, config)
            if not resume:
                plane.run_days(3)
            else:
                plane.run_days(1)
                plane.checkpoint(tmp_path / "ckpt.bin")
                plane.close()
                plane = ControlPlane.restore(tmp_path / "ckpt.bin")
                plane.run_days(2)
            report = plane.report_bytes()
            plane.close()
            return report

        assert run(resume=False) == run(resume=True)
