"""Streaming worlds on the fabric: sources, fleet wiring, resume."""

import pickle

import pytest

from repro.fabric import (
    STREAMING_THRESHOLD,
    ControlPlane,
    FleetConfig,
    StreamingJobSource,
    build_fleet,
)
from repro.fabric.fleet import PeregrineDriver
from repro.workloads.scope import ScopeWorkloadConfig, ScopeWorkloadGenerator


class TestStreamingJobSource:
    def test_matches_eager_generator(self):
        source = StreamingJobSource(
            seed=3, days=3, jobs_per_day=50,
            config=ScopeWorkloadConfig(n_recurring_templates=30),
        )
        eager = ScopeWorkloadGenerator(
            rng=3, config=ScopeWorkloadConfig(n_recurring_templates=30)
        ).generate(n_days=3)
        for day in range(3):
            assert source.get(day) == list(eager.by_day(day))

    def test_day_cache_capacity_one(self):
        source = StreamingJobSource(seed=0, days=3, jobs_per_day=50)
        assert source.get(1) is source.get(1)
        first = source.get(1)
        source.get(2)
        assert source.get(1) is not first  # regenerated, not hoarded

    def test_out_of_range_days_empty(self):
        source = StreamingJobSource(seed=0, days=2, jobs_per_day=50)
        assert source.get(2, []) == []
        assert source.get(-1, []) == []
        assert source.get(5) is None

    def test_pairs_view_head_limit(self):
        source = StreamingJobSource(seed=0, days=2, jobs_per_day=50)
        pairs = source.pairs(head=4)
        day = pairs.get(0)
        assert len(day) == 4
        full = [(j.job_id, j.plan) for j in source.get(0)[:4]]
        assert day == full
        assert pairs.get(9, []) == []

    def test_pickle_round_trip_replays(self):
        source = StreamingJobSource(seed=5, days=3, jobs_per_day=50)
        want = [j.job_id for j in source.get(2)]
        clone = pickle.loads(pickle.dumps(source))
        assert [j.job_id for j in clone.get(2)] == want

    def test_rejects_zero_days(self):
        with pytest.raises(ValueError):
            StreamingJobSource(seed=0, days=0, jobs_per_day=10)


class TestFleetStreaming:
    def test_resolve_streaming_threshold(self):
        assert not FleetConfig().resolve_streaming()
        assert FleetConfig(
            jobs_per_day=STREAMING_THRESHOLD
        ).resolve_streaming()
        assert FleetConfig(jobs_per_day=8, streaming=True).resolve_streaming()
        assert not FleetConfig(
            jobs_per_day=10**6, streaming=False
        ).resolve_streaming()

    def test_streaming_fleet_runs_and_ingests_full_days(self, tmp_path):
        config = FleetConfig(
            days=2,
            jobs_per_day=1200,
            include=("peregrine", "steering"),
            streaming=True,
            repo_memory_budget_mb=1,
            repo_spill_dir=str(tmp_path / "chunks"),
        )
        plane = ControlPlane()
        build_fleet(plane, config)
        plane.run_days(2)
        driver = next(
            b.driver
            for b in plane.bindings
            if isinstance(b.driver, PeregrineDriver)
        )
        # the repository saw the full stream, not the service head
        assert len(driver.repo) > 2 * config.service_jobs_per_day
        assert driver.repo.days() == [0, 1]
        assert driver.repo.chunk_stats()["spilled_chunks"] >= 1
        steering = next(
            b.driver for b in plane.bindings if b.name == "steering"
        )
        # the plan-facing service sampled only each day's head
        assert steering.jobs_seen == 2 * config.service_jobs_per_day
        plane.close()

    def test_streaming_checkpoint_resume_identical(self, tmp_path):
        def run(resume_from=None):
            config = FleetConfig(
                days=3,
                jobs_per_day=600,
                include=("peregrine", "steering"),
                streaming=True,
            )
            plane = ControlPlane()
            build_fleet(plane, config)
            if resume_from is None:
                plane.run_days(3)
            else:
                plane.run_days(1)
                blob = plane.checkpoint(tmp_path / "ckpt.bin")
                plane.close()
                plane = ControlPlane.restore(tmp_path / "ckpt.bin")
                plane.run_days(2)
            report = plane.report_bytes()
            plane.close()
            return report

        assert run() == run(resume_from="ckpt")
