"""Checkpoint/restore: interrupted fabric runs finish byte-identically.

The acceptance scenario for the control plane: a fleet of 7 services
runs 7 simulated days; checkpointing at day 3, restoring (optionally in
a fresh interpreter via pickle bytes), and running the remaining 4 days
must produce the *byte-identical* final report an uninterrupted run
produces — through both checkpoint formats (@1 full pickle, @2
base+delta chain) and through the deprecated module-function shims.
"""

import pickle

import pytest

from repro.fabric import (
    FORMAT_V1,
    CheckpointStore,
    ControlPlane,
    FaultInjector,
    FleetConfig,
    RecordingDriver,
    build_fleet,
)
from repro.fabric.store import checkpoint_bytes_v1, restore_v1

DAYS = 7
CHECKPOINT_AT = 3


def _fleet_plane(injector=None, workers=1):
    plane = ControlPlane(injector=injector)
    build_fleet(plane, FleetConfig(days=DAYS, workers=workers))
    return plane


def _v1_round_trip(plane):
    """In-memory @1 snapshot/restore (a fresh-interpreter stand-in)."""
    return restore_v1(pickle.loads(checkpoint_bytes_v1(plane)))


@pytest.fixture(scope="module")
def uninterrupted_report():
    plane = _fleet_plane()
    plane.run_days(DAYS)
    return plane.report_bytes()


class TestFleetCheckpointResume:
    def test_fleet_is_at_least_five_services(self):
        assert len(_fleet_plane().bindings) >= 5

    @pytest.mark.parametrize("version", [1, 2])
    def test_resumed_run_is_byte_identical(
        self, tmp_path, version, uninterrupted_report
    ):
        plane = _fleet_plane()
        plane.run_days(CHECKPOINT_AT)
        CheckpointStore(tmp_path / "store", version=version).save(plane)
        restored = CheckpointStore.load(tmp_path / "store")
        assert restored.day == CHECKPOINT_AT
        restored.run_days(DAYS - CHECKPOINT_AT)
        assert restored.report_bytes() == uninterrupted_report

    def test_delta_chain_resumes_byte_identical(
        self, tmp_path, uninterrupted_report
    ):
        # Save every day: base at day 1, deltas after — the restored
        # plane merges the whole chain.
        plane = _fleet_plane()
        store = CheckpointStore(tmp_path / "store")
        kinds = []
        for _ in range(CHECKPOINT_AT):
            plane.run_days(1)
            kinds.append(store.save(plane).kind)
        assert kinds == ["base", "delta", "delta"]
        restored = CheckpointStore.load(tmp_path / "store")
        restored.run_days(DAYS - CHECKPOINT_AT)
        assert restored.report_bytes() == uninterrupted_report

    def test_checkpointed_plane_can_also_continue(
        self, tmp_path, uninterrupted_report
    ):
        # Taking a snapshot must not perturb the running plane.
        plane = _fleet_plane()
        plane.run_days(CHECKPOINT_AT)
        CheckpointStore(tmp_path / "store").save(plane)
        plane.run_days(DAYS - CHECKPOINT_AT)
        assert plane.report_bytes() == uninterrupted_report

    def test_parallel_workers_match_serial(self, uninterrupted_report):
        plane = _fleet_plane(workers=2)
        plane.run_days(DAYS)
        assert plane.report_bytes() == uninterrupted_report

    def test_file_round_trip(self, tmp_path, uninterrupted_report):
        path = tmp_path / "fabric.ckpt"
        plane = _fleet_plane()
        plane.run_days(CHECKPOINT_AT)
        plane.checkpoint(path)
        restored = ControlPlane.restore(path)
        assert restored.day == CHECKPOINT_AT
        restored.run_days(DAYS - CHECKPOINT_AT)
        assert restored.report_bytes() == uninterrupted_report

    def test_resume_with_faults_still_deterministic(self):
        def injector():
            inj = FaultInjector()
            inj.inject("seagull", "recommend", day=5, times=3)
            inj.inject("doppler", "recommend", day=1, times=1)
            return inj

        straight = _fleet_plane(injector=injector())
        straight.run_days(DAYS)

        interrupted = _fleet_plane(injector=injector())
        interrupted.run_days(CHECKPOINT_AT)
        restored = _v1_round_trip(interrupted)
        restored.run_days(DAYS - CHECKPOINT_AT)
        assert restored.report_bytes() == straight.report_bytes()
        # The day-5 fault fires after the checkpoint and still degrades.
        assert restored.health.summary()["degraded"] == 1


class TestCheckpointFormat:
    def test_v1_format_tag_present(self):
        plane = ControlPlane()
        plane.register(RecordingDriver())
        payload = pickle.loads(checkpoint_bytes_v1(plane))
        assert payload["format"] == FORMAT_V1
        assert set(payload["state"]) >= {
            "day", "now", "registry", "lifecycle", "bindings",
        }

    def test_foreign_pickle_rejected(self, tmp_path):
        payload = {"format": "something-else", "state": {}}
        with pytest.raises(ValueError, match="not a fabric checkpoint"):
            restore_v1(payload)
        foreign = tmp_path / "foreign.pkl"
        foreign.write_bytes(pickle.dumps(payload))
        with pytest.raises(ValueError, match="not a fabric checkpoint"):
            CheckpointStore.load(foreign)

    def test_obs_runtime_never_pickled(self):
        from repro.obs import ObservabilityRuntime

        obs = ObservabilityRuntime()
        plane = ControlPlane(obs=obs)
        plane.register(RecordingDriver())
        plane.run_days(1)
        blob = checkpoint_bytes_v1(plane)  # must not try to pickle obs
        assert plane._obs is obs  # rebound after the snapshot
        restored = restore_v1(pickle.loads(blob))
        assert restored._obs is None

    def test_restore_rebinds_fresh_obs(self, tmp_path):
        from repro.obs import ObservabilityRuntime

        plane = ControlPlane()
        plane.register(RecordingDriver())
        plane.run_days(1)
        CheckpointStore(tmp_path / "store").save(plane)
        fresh = ObservabilityRuntime()
        restored = CheckpointStore.load(tmp_path / "store", obs=fresh)
        restored.run_days(1)
        assert any(s.name == "fabric.run" for s in fresh.tracer.spans)
        kinds = [e.kind for e in fresh.events.events]
        assert "restore" in kinds

    @pytest.mark.parametrize("version", [1, 2])
    def test_shared_registry_identity_survives(self, tmp_path, version):
        # Drivers holding the shared registry must restore pointing at
        # the same object the lifecycle owns — @1 gets this from the
        # single pickle dump, @2 from persistent-id shared refs.
        plane = _fleet_plane()
        plane.run_days(2)
        CheckpointStore(tmp_path / "store", version=version).save(plane)
        restored = CheckpointStore.load(tmp_path / "store")
        feedback = next(
            b.driver for b in restored.bindings if b.name == "feedback"
        )
        assert feedback.loop is not None
        assert feedback.loop.registry is restored.registry
        assert restored.lifecycle.registry is restored.registry


class TestDeprecatedShims:
    """The old module-function API still works, one release, warning."""

    def test_bytes_shims_warn_and_round_trip(self, uninterrupted_report):
        from repro.fabric.checkpoint import checkpoint_bytes, restore_from_bytes

        plane = _fleet_plane()
        plane.run_days(CHECKPOINT_AT)
        with pytest.warns(DeprecationWarning, match="repro.fabric.store"):
            blob = checkpoint_bytes(plane)
        with pytest.warns(DeprecationWarning, match="repro.fabric.store"):
            restored = restore_from_bytes(blob)
        restored.run_days(DAYS - CHECKPOINT_AT)
        assert restored.report_bytes() == uninterrupted_report

    def test_file_shims_warn_and_round_trip(self, tmp_path):
        from repro.fabric.checkpoint import load_checkpoint, save_checkpoint

        plane = ControlPlane()
        plane.register(RecordingDriver())
        plane.run_days(2)
        path = tmp_path / "fabric.ckpt"
        with pytest.warns(DeprecationWarning, match="save_checkpoint"):
            save_checkpoint(plane, path)
        with pytest.warns(DeprecationWarning, match="load_checkpoint"):
            restored = load_checkpoint(path)
        assert restored.day == 2
