"""Checkpoint/restore: interrupted fabric runs finish byte-identically.

The acceptance scenario for the control plane: a fleet of 7 services
runs 7 simulated days; checkpointing at day 3, restoring (optionally in
a fresh interpreter via pickle bytes), and running the remaining 4 days
must produce the *byte-identical* final report an uninterrupted run
produces.
"""

import pickle

import pytest

from repro.fabric import (
    CHECKPOINT_FORMAT,
    ControlPlane,
    FaultInjector,
    FleetConfig,
    RecordingDriver,
    build_fleet,
)
from repro.fabric.checkpoint import checkpoint_bytes, restore_from_bytes

DAYS = 7
CHECKPOINT_AT = 3


def _fleet_plane(injector=None, workers=1):
    plane = ControlPlane(injector=injector)
    build_fleet(plane, FleetConfig(days=DAYS, workers=workers))
    return plane


@pytest.fixture(scope="module")
def uninterrupted_report():
    plane = _fleet_plane()
    plane.run_days(DAYS)
    return plane.report_bytes()


class TestFleetCheckpointResume:
    def test_fleet_is_at_least_five_services(self):
        assert len(_fleet_plane().bindings) >= 5

    def test_resumed_run_is_byte_identical(self, uninterrupted_report):
        plane = _fleet_plane()
        plane.run_days(CHECKPOINT_AT)
        blob = checkpoint_bytes(plane)
        restored = restore_from_bytes(blob)
        restored.run_days(DAYS - CHECKPOINT_AT)
        assert restored.report_bytes() == uninterrupted_report

    def test_checkpointed_plane_can_also_continue(self, uninterrupted_report):
        # Taking a snapshot must not perturb the running plane.
        plane = _fleet_plane()
        plane.run_days(CHECKPOINT_AT)
        checkpoint_bytes(plane)
        plane.run_days(DAYS - CHECKPOINT_AT)
        assert plane.report_bytes() == uninterrupted_report

    def test_parallel_workers_match_serial(self, uninterrupted_report):
        plane = _fleet_plane(workers=2)
        plane.run_days(DAYS)
        assert plane.report_bytes() == uninterrupted_report

    def test_file_round_trip(self, tmp_path, uninterrupted_report):
        path = tmp_path / "fabric.ckpt"
        plane = _fleet_plane()
        plane.run_days(CHECKPOINT_AT)
        plane.checkpoint(path)
        restored = ControlPlane.restore(path)
        assert restored.day == CHECKPOINT_AT
        restored.run_days(DAYS - CHECKPOINT_AT)
        assert restored.report_bytes() == uninterrupted_report

    def test_resume_with_faults_still_deterministic(self):
        def injector():
            inj = FaultInjector()
            inj.inject("seagull", "recommend", day=5, times=3)
            inj.inject("doppler", "recommend", day=1, times=1)
            return inj

        straight = _fleet_plane(injector=injector())
        straight.run_days(DAYS)

        interrupted = _fleet_plane(injector=injector())
        interrupted.run_days(CHECKPOINT_AT)
        restored = restore_from_bytes(checkpoint_bytes(interrupted))
        restored.run_days(DAYS - CHECKPOINT_AT)
        assert restored.report_bytes() == straight.report_bytes()
        # The day-5 fault fires after the checkpoint and still degrades.
        assert restored.health.summary()["degraded"] == 1


class TestCheckpointFormat:
    def test_format_tag_present(self):
        plane = ControlPlane()
        plane.register(RecordingDriver())
        payload = pickle.loads(checkpoint_bytes(plane))
        assert payload["format"] == CHECKPOINT_FORMAT
        assert set(payload["state"]) >= {
            "day", "now", "registry", "lifecycle", "bindings",
        }

    def test_foreign_pickle_rejected(self):
        blob = pickle.dumps({"format": "something-else", "state": {}})
        with pytest.raises(ValueError, match="not a fabric checkpoint"):
            restore_from_bytes(blob)

    def test_obs_runtime_never_pickled(self):
        from repro.obs import ObservabilityRuntime

        obs = ObservabilityRuntime()
        plane = ControlPlane(obs=obs)
        plane.register(RecordingDriver())
        plane.run_days(1)
        blob = checkpoint_bytes(plane)  # must not try to pickle obs
        assert plane._obs is obs  # rebound after the snapshot
        restored = restore_from_bytes(blob)
        assert restored._obs is None

    def test_restore_rebinds_fresh_obs(self):
        from repro.obs import ObservabilityRuntime

        plane = ControlPlane()
        plane.register(RecordingDriver())
        plane.run_days(1)
        blob = checkpoint_bytes(plane)
        fresh = ObservabilityRuntime()
        restored = restore_from_bytes(blob, obs=fresh)
        restored.run_days(1)
        assert any(s.name == "fabric.run" for s in fresh.tracer.spans)
        kinds = [e.kind for e in fresh.events.events]
        assert "restore" in kinds

    def test_shared_registry_identity_survives(self):
        # Drivers holding the shared registry must restore pointing at
        # the same object the lifecycle owns (single pickle dump).
        plane = _fleet_plane()
        plane.run_days(2)
        restored = restore_from_bytes(checkpoint_bytes(plane))
        feedback = next(
            b.driver for b in restored.bindings if b.name == "feedback"
        )
        assert feedback.loop is not None
        assert feedback.loop.registry is restored.registry
        assert restored.lifecycle.registry is restored.registry
