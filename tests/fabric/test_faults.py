"""Tests for retry policy, fault specs, and plane-level fault tolerance."""

import pytest

from repro.fabric import (
    ControlPlane,
    FaultInjector,
    InjectedFault,
    RecordingDriver,
    RetryPolicy,
    parse_fault_spec,
)
from repro.obs import ObservabilityRuntime
from repro.telemetry import Metric


class TestRetryPolicy:
    def test_backoff_grows_geometrically(self):
        policy = RetryPolicy(max_attempts=4, backoff_base=0.5, backoff_factor=2.0)
        assert [policy.backoff(i) for i in (1, 2, 3)] == [0.5, 1.0, 2.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy().backoff(0)


class TestFaultSpecs:
    def test_parse_full_form(self):
        spec = parse_fault_spec("seagull:recommend:3:2")
        assert (spec.service, spec.stage, spec.day, spec.times) == (
            "seagull", "recommend", 3, 2,
        )

    def test_parse_wildcard_day(self):
        assert parse_fault_spec("a:observe:*").day is None
        assert parse_fault_spec("a:observe").day is None

    def test_parse_rejects_bad_forms(self):
        for bad in ("nostage", "a:observe:1:2:x", ":observe", "a::1"):
            with pytest.raises(ValueError):
                parse_fault_spec(bad)
        with pytest.raises(ValueError):
            parse_fault_spec("a:observe:1:0")

    def test_injector_fires_exactly_times(self):
        injector = FaultInjector()
        injector.inject("svc", "observe", times=2)
        for _ in range(2):
            with pytest.raises(InjectedFault):
                injector.check("svc", "observe", day=0)
        injector.check("svc", "observe", day=0)  # exhausted: no raise
        assert injector.fired == 2

    def test_injector_matches_day(self):
        injector = FaultInjector()
        injector.inject("svc", "observe", day=2)
        injector.check("svc", "observe", day=1)
        with pytest.raises(InjectedFault):
            injector.check("svc", "observe", day=2)


class TestPlaneFaultTolerance:
    def test_transient_fault_is_retried_not_surfaced(self):
        injector = FaultInjector()
        injector.inject("recorder", "observe", day=1, times=1)
        plane = ControlPlane(injector=injector)
        plane.register(RecordingDriver())
        plane.run_days(3)
        # All three days ran; day 1's observe took an extra attempt.
        assert [d for s, d in plane.bindings[0].driver.calls if s == "observe"] == [
            0, 1, 2,
        ]
        bucket = plane.health.counters[("recorder", "observe")]
        assert bucket["retried"] == 1
        assert bucket["attempts"] == 4
        assert plane.health.total("degraded") == 0

    def test_persistent_fault_degrades_without_aborting(self):
        injector = FaultInjector()
        injector.inject("recorder", "observe", day=1, times=3)
        plane = ControlPlane(injector=injector)
        plane.register(RecordingDriver())
        plane.run_days(3)
        calls = plane.bindings[0].driver.calls
        # Day 1's observe was lost to the fault, but the tick continued
        # (recommend/validate ran) and later days are unaffected.
        assert [d for s, d in calls if s == "observe"] == [0, 2]
        assert [d for s, d in calls if s == "recommend"] == [0, 1, 2]
        bucket = plane.health.counters[("recorder", "observe")]
        assert bucket["degraded"] == 1

    def test_driver_exception_handled_same_as_injected_fault(self):
        plane = ControlPlane()
        plane.register(RecordingDriver(fail_stage="recommend", fail_times=5))
        plane.run_days(2)
        health = plane.health.summary()
        assert health["stages"]["recorder.recommend"]["degraded"] == 1
        # fail_times=5 > max_attempts=3: day 0 degrades after 3 attempts,
        # day 1 burns the remaining 2 failures then succeeds on the third.
        assert health["stages"]["recorder.recommend"]["retried"] == 1

    def test_fault_events_reach_the_telemetry_store(self):
        injector = FaultInjector()
        injector.inject("recorder", "observe", day=0, times=3)
        obs = ObservabilityRuntime()
        plane = ControlPlane(injector=injector, obs=obs)
        plane.register(RecordingDriver())
        plane.run_days(2)
        obs.flush()
        points = obs.query().metric(Metric.EVENT_COUNT).where(layer="fabric").points()
        kinds = {}
        for point in points:
            kind = point.dimension("kind")
            kinds[kind] = kinds.get(kind, 0) + 1
        assert kinds.get("stage_retry") == 2  # attempts 1 and 2 backed off
        assert kinds.get("stage_degraded") == 1
        assert kinds.get("stage_ok", 0) > 0

    def test_custom_retry_policy_bounds_attempts(self):
        injector = FaultInjector()
        injector.inject("recorder", "observe", day=0, times=1)
        plane = ControlPlane(
            retry=RetryPolicy(max_attempts=1), injector=injector
        )
        plane.register(RecordingDriver())
        plane.run_days(1)
        bucket = plane.health.counters[("recorder", "observe")]
        assert bucket == {"ok": 0, "retried": 0, "degraded": 1, "attempts": 1}
