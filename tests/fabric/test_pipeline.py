"""Tests for pipeline stage declaration and discovery."""

import pytest

from repro.fabric import STAGES, PipelineDriver, RecordingDriver, TickContext
from repro.fabric.lifecycle import ModelLifecycle


def _ctx(day=0, tick=0):
    return TickContext(day=day, tick=tick, now=float(day), lifecycle=ModelLifecycle())


class TestStageDiscovery:
    def test_canonical_order(self):
        class Backwards(PipelineDriver):
            name = "backwards"

            def validate(self, ctx):
                pass

            def observe(self, ctx):
                pass

            def act(self, ctx):
                pass

        names = [stage for stage, _ in Backwards().stages()]
        assert names == ["observe", "act", "validate"]
        assert set(names) <= set(STAGES)

    def test_driver_without_stages_rejected(self):
        class Empty(PipelineDriver):
            name = "empty"

        with pytest.raises(TypeError, match="no pipeline stages"):
            Empty().stages()

    def test_recording_driver_declares_three_stages(self):
        assert [s for s, _ in RecordingDriver().stages()] == [
            "observe",
            "recommend",
            "validate",
        ]


class TestRecordingDriver:
    def test_records_calls_with_days(self):
        driver = RecordingDriver()
        for stage, fn in driver.stages():
            fn(_ctx(day=3))
        assert driver.calls == [("observe", 3), ("recommend", 3), ("validate", 3)]
        assert driver.final_report() == {"calls": 3}

    def test_fail_stage_raises_then_recovers(self):
        driver = RecordingDriver(fail_stage="observe", fail_times=2)
        with pytest.raises(RuntimeError):
            driver.observe(_ctx())
        with pytest.raises(RuntimeError):
            driver.observe(_ctx())
        driver.observe(_ctx())  # third attempt succeeds
        assert driver.calls == [("observe", 0)]

    def test_default_degrade_is_a_noop(self):
        driver = RecordingDriver()
        driver.degrade("observe", _ctx())
        assert driver.calls == []
