"""Tests for the serverless pause/resume simulator."""

import numpy as np
import pytest

from repro.infra import AlwaysOnPolicy, ReactiveIdlePolicy, ServerlessSimulator
from repro.workloads.usage import TenantTrace


def trace_from(values):
    return TenantTrace("t", np.asarray(values, dtype=float), True)


@pytest.fixture
def sim():
    return ServerlessSimulator(activity_threshold=0.5, cold_start_seconds=60.0)


class TestAlwaysOn:
    def test_bills_every_hour_no_cold_starts(self, sim):
        trace = trace_from([1, 0, 0, 1, 0, 1])
        report = sim.run(trace, AlwaysOnPolicy())
        assert report.billed_hours == 6
        assert report.cold_starts == 0
        assert report.active_hours == 3


class TestReactiveIdle:
    def test_pauses_after_timeout_and_cold_starts_on_demand(self, sim):
        # hours: active, idle, idle, idle, active
        trace = trace_from([1, 0, 0, 0, 1])
        report = sim.run(trace, ReactiveIdlePolicy(idle_hours=1, activity_threshold=0.5))
        # hour0 billed (active); hour1 idle, history=[1] not idle -> stays on,
        # billed; hour2 idle, history[-1]=0 -> pause; hour3 paused; hour4
        # active -> cold start + billed.
        assert report.billed_hours == 3
        assert report.cold_starts == 1

    def test_longer_timeout_costs_more_but_fewer_cold_starts(self, sim):
        rng = np.random.default_rng(0)
        # bursty: short idle gaps that a long timeout rides out
        values = (rng.random(500) < 0.5).astype(float)
        t = trace_from(values)
        short = sim.run(t, ReactiveIdlePolicy(idle_hours=1, activity_threshold=0.5))
        long = sim.run(t, ReactiveIdlePolicy(idle_hours=6, activity_threshold=0.5))
        assert long.billed_hours >= short.billed_hours
        assert long.cold_starts <= short.cold_starts

    def test_all_idle_trace_costs_little(self, sim):
        report = sim.run(
            trace_from([0] * 50),
            ReactiveIdlePolicy(idle_hours=1, activity_threshold=0.5),
        )
        assert report.billed_hours <= 2
        assert report.cold_starts == 0


class TestReportMetrics:
    def test_cold_start_rate(self, sim):
        trace = trace_from([1, 0, 0, 1])
        report = sim.run(trace, ReactiveIdlePolicy(idle_hours=1, activity_threshold=0.5))
        assert report.cold_start_rate == pytest.approx(
            report.cold_starts / report.active_hours
        )

    def test_zero_active_hours(self, sim):
        report = sim.run(trace_from([0, 0]), AlwaysOnPolicy())
        assert report.cold_start_rate == 0.0

    def test_cost_scales_with_price(self, sim):
        report = sim.run(trace_from([1, 1]), AlwaysOnPolicy())
        assert report.cost(2.0) == 2 * report.billed_hours

    def test_total_delay(self, sim):
        trace = trace_from([1, 0, 0, 1])
        report = sim.run(trace, ReactiveIdlePolicy(idle_hours=1, activity_threshold=0.5))
        assert report.total_delay_seconds == report.cold_starts * 60.0

    def test_invalid_cold_start(self):
        with pytest.raises(ValueError):
            ServerlessSimulator(cold_start_seconds=-1)


class TestProactiveResume:
    def test_proactive_resume_avoids_cold_start(self, sim):
        # A clairvoyant-ish policy that resumes an hour before activity
        # (here: always resumes immediately after pausing).
        class EagerResume(ReactiveIdlePolicy):
            def should_resume(self, hour, history):
                return True

        trace = trace_from([1, 0, 0, 1])
        report = sim.run(
            trace, EagerResume(idle_hours=1, activity_threshold=0.5)
        )
        assert report.cold_starts == 0
