"""Tests for the autoscaling simulator and policies."""

import numpy as np
import pytest

from repro.infra import (
    AutoscaleSimulator,
    PredictiveScalingPolicy,
    ReactiveScalingPolicy,
)
from repro.workloads import generate_demand


def weekly_demand(n_days=21, scale=400.0):
    trace = generate_demand(n_days=n_days, rng=0)
    return trace.counts_per_hour() * scale / max(trace.counts_per_hour().max(), 1)


@pytest.fixture(scope="module")
def demand():
    return weekly_demand()


@pytest.fixture
def simulator():
    return AutoscaleSimulator(capacity=50.0, initial_replicas=2)


class TestValidation:
    def test_invalid_simulator(self):
        with pytest.raises(ValueError):
            AutoscaleSimulator(capacity=0)
        with pytest.raises(ValueError):
            AutoscaleSimulator(initial_replicas=0)

    def test_invalid_reactive_policy(self):
        with pytest.raises(ValueError):
            ReactiveScalingPolicy(capacity=50, high=0.2, low=0.5)
        with pytest.raises(ValueError):
            ReactiveScalingPolicy(capacity=50, step=0)

    def test_invalid_predictive_policy(self):
        with pytest.raises(ValueError):
            PredictiveScalingPolicy(capacity=50, headroom=0.5)

    def test_empty_demand_rejected(self, simulator):
        with pytest.raises(ValueError):
            simulator.run(np.array([]), ReactiveScalingPolicy(capacity=50))


class TestReactive:
    def test_scales_out_under_load(self, simulator):
        demand = np.full(24, 500.0)  # needs 10 replicas at capacity 50
        report = simulator.run(demand, ReactiveScalingPolicy(capacity=50, step=2))
        assert report.replicas[-1] > report.replicas[0]

    def test_scales_in_when_idle(self, simulator):
        demand = np.concatenate([np.full(10, 500.0), np.full(30, 10.0)])
        report = simulator.run(demand, ReactiveScalingPolicy(capacity=50, step=2))
        assert report.replicas[-1] < report.replicas[10]
        assert report.replicas.min() >= 1

    def test_chases_demand_with_lag(self, simulator):
        # A step increase causes violations while replicas catch up.
        demand = np.concatenate([np.full(5, 50.0), np.full(10, 600.0)])
        report = simulator.run(demand, ReactiveScalingPolicy(capacity=50))
        assert report.violation_fraction > 0.1


class TestPredictive:
    def test_dominates_reactive_on_seasonal_demand(self, simulator, demand):
        reactive = simulator.run(demand, ReactiveScalingPolicy(capacity=50, step=2))
        predictive = simulator.run(demand, PredictiveScalingPolicy(capacity=50))
        # Fewer violations *and* fewer replica-hours: strict dominance.
        assert predictive.violation_fraction < reactive.violation_fraction
        assert predictive.replica_hours < reactive.replica_hours

    def test_violations_near_zero_on_seasonal_load(self, simulator, demand):
        report = simulator.run(demand, PredictiveScalingPolicy(capacity=50))
        # Ignore the first unseeded day.
        assert report.violation_fraction < 0.05

    def test_headroom_trades_cost_for_qos(self, simulator, demand):
        tight = simulator.run(
            demand, PredictiveScalingPolicy(capacity=50, headroom=1.0)
        )
        roomy = simulator.run(
            demand, PredictiveScalingPolicy(capacity=50, headroom=1.5)
        )
        assert roomy.replica_hours > tight.replica_hours
        assert roomy.violation_fraction <= tight.violation_fraction


class TestReport:
    def test_metrics_ranges(self, simulator, demand):
        report = simulator.run(demand, PredictiveScalingPolicy(capacity=50))
        assert 0.0 <= report.violation_fraction <= 1.0
        assert 0.0 <= report.mean_utilization <= 1.0
        assert report.replica_hours >= demand.size  # at least 1 replica/hour

    def test_scaling_latency_is_one_hour(self, simulator):
        # The decision at hour h serves at hour h+1, never the same hour.
        demand = np.array([50.0, 5000.0, 5000.0])
        policy = PredictiveScalingPolicy(capacity=50, headroom=1.0)
        report = simulator.run(demand, policy)
        assert report.replicas[0] == simulator.initial_replicas
