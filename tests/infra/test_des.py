"""Tests for the discrete-event core."""

import pytest

from repro.infra import EventQueue


class TestEventQueue:
    def test_events_run_in_time_order(self):
        q = EventQueue()
        order = []
        q.schedule(5.0, lambda: order.append("b"))
        q.schedule(1.0, lambda: order.append("a"))
        q.schedule(9.0, lambda: order.append("c"))
        q.run()
        assert order == ["a", "b", "c"]
        assert q.now == 9.0
        assert q.processed == 3

    def test_ties_break_by_insertion_order(self):
        q = EventQueue()
        order = []
        q.schedule(1.0, lambda: order.append(1))
        q.schedule(1.0, lambda: order.append(2))
        q.run()
        assert order == [1, 2]

    def test_actions_can_schedule_more_events(self):
        q = EventQueue()
        fired = []

        def chain():
            fired.append(q.now)
            if len(fired) < 3:
                q.schedule_after(1.0, chain)

        q.schedule(0.0, chain)
        q.run()
        assert fired == [0.0, 1.0, 2.0]

    def test_run_until_stops_clock(self):
        q = EventQueue()
        fired = []
        q.schedule(1.0, lambda: fired.append(1))
        q.schedule(10.0, lambda: fired.append(2))
        q.run(until=5.0)
        assert fired == [1]
        assert q.now == 5.0
        assert len(q) == 1

    def test_cannot_schedule_in_the_past(self):
        q = EventQueue()
        q.schedule(2.0, lambda: None)
        q.run()
        with pytest.raises(ValueError, match="past"):
            q.schedule(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().schedule_after(-1.0, lambda: None)

    def test_nan_time_rejected(self):
        # NaN compares False against everything, so without the guard it
        # would slip past the in-the-past check and corrupt heap order.
        with pytest.raises(ValueError, match="finite"):
            EventQueue().schedule(float("nan"), lambda: None)

    def test_infinite_time_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            EventQueue().schedule(float("inf"), lambda: None)

    def test_nan_delay_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            EventQueue().schedule_after(float("nan"), lambda: None)

    def test_infinite_delay_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            EventQueue().schedule_after(float("-inf"), lambda: None)

    def test_run_until_with_empty_queue_advances_clock(self):
        q = EventQueue()
        q.run(until=7.0)
        assert q.now == 7.0
