"""Tests for the container scheduler."""

import numpy as np
import pytest

from repro.infra import ContainerScheduler, SkuFleetConfig
from repro.workloads.machines import DEFAULT_SKUS


def fleet(caps=(20, 20, 20), machines=4):
    return [
        SkuFleetConfig(sku, n_machines=machines, max_containers=cap)
        for sku, cap in zip(DEFAULT_SKUS, caps)
    ]


class TestConfig:
    def test_invalid_fleet_config(self):
        with pytest.raises(ValueError):
            SkuFleetConfig(DEFAULT_SKUS[0], n_machines=0, max_containers=10)
        with pytest.raises(ValueError):
            SkuFleetConfig(DEFAULT_SKUS[0], n_machines=1, max_containers=-1)

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            ContainerScheduler([])


class TestPlacement:
    def test_capacity(self):
        sched = ContainerScheduler(fleet(), rng=0)
        assert sched.capacity == 3 * 4 * 20

    def test_all_placed_under_capacity(self):
        sched = ContainerScheduler(fleet(), rng=0)
        report = sched.place(100)
        assert report.placed == 100
        assert report.queued == 0
        assert sum(report.containers_by_machine.values()) == 100

    def test_overflow_queues(self):
        sched = ContainerScheduler(fleet(), rng=0)
        report = sched.place(sched.capacity + 50)
        assert report.placed == sched.capacity
        assert report.queued == 50

    def test_caps_respected(self):
        sched = ContainerScheduler(fleet(caps=(5, 10, 15)), rng=0)
        report = sched.place(10_000)
        for machine, count in report.containers_by_machine.items():
            cap = 5 if machine.startswith("gen4") else 10 if machine.startswith("gen5") else 15
            assert count <= cap

    def test_water_filling_balances_relative_load(self):
        sched = ContainerScheduler(fleet(caps=(10, 20, 30)), noise=0.0, rng=0)
        report = sched.place(120)  # half of capacity (240)
        rel = [
            report.containers_by_machine[m]
            / (10 if m.startswith("gen4") else 20 if m.startswith("gen5") else 30)
            for m in report.containers_by_machine
        ]
        assert max(rel) - min(rel) < 0.2

    def test_equal_caps_overload_weak_sku(self):
        # With the same cap everywhere, the slow gen4 machines run much
        # hotter -- the imbalance KEA's tuned caps remove.
        sched = ContainerScheduler(fleet(caps=(28, 28, 28)), noise=0.0, rng=0)
        report = sched.place(sched.capacity)
        gen4 = np.mean(
            [v for m, v in report.cpu_by_machine.items() if m.startswith("gen4")]
        )
        gen6 = np.mean(
            [v for m, v in report.cpu_by_machine.items() if m.startswith("gen6")]
        )
        assert gen4 > gen6 + 20

    def test_zero_demand(self):
        report = ContainerScheduler(fleet(), rng=0).place(0)
        assert report.placed == 0
        assert all(v == 0 for v in report.containers_by_machine.values())

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            ContainerScheduler(fleet(), rng=0).place(-1)

    def test_report_metrics(self):
        report = ContainerScheduler(fleet(), noise=0.0, rng=0).place(60)
        assert 0.0 <= report.mean_cpu <= 100.0
        assert report.cpu_imbalance >= 0.0
        assert 0.0 <= report.overload_fraction() <= 1.0

    def test_sweep(self):
        reports = ContainerScheduler(fleet(), rng=0).sweep([10, 20, 30])
        assert [r.placed for r in reports] == [10, 20, 30]
