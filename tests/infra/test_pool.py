"""Tests for the cluster pool simulator."""

import numpy as np
import pytest

from repro.infra import ClusterPoolSimulator, NoPoolPolicy, StaticPoolPolicy
from repro.workloads import generate_demand


@pytest.fixture(scope="module")
def trace():
    return generate_demand(n_days=7, rng=0)


class TestPoolSimulator:
    def test_no_pool_means_all_cold(self, trace):
        sim = ClusterPoolSimulator()
        report = sim.run(trace, NoPoolPolicy())
        assert report.warm_hits == 0
        assert report.cold_starts == trace.n_requests
        assert report.mean_latency == pytest.approx(sim.cold_start_seconds)

    def test_huge_static_pool_means_all_warm(self, trace):
        sim = ClusterPoolSimulator()
        report = sim.run(trace, StaticPoolPolicy(size=10_000))
        assert report.cold_starts == 0
        assert report.hit_rate == 1.0
        assert report.mean_latency == pytest.approx(sim.warm_latency_seconds)

    def test_latency_count_matches_requests(self, trace):
        report = ClusterPoolSimulator().run(trace, StaticPoolPolicy(size=5))
        assert report.n_requests == trace.n_requests

    def test_bigger_pool_lowers_latency_raises_cost(self, trace):
        sim = ClusterPoolSimulator()
        small = sim.run(trace, StaticPoolPolicy(size=2))
        large = sim.run(trace, StaticPoolPolicy(size=30))
        assert large.mean_latency < small.mean_latency
        assert large.warm_idle_hours > small.warm_idle_hours

    def test_p99_dominated_by_cold_starts_for_small_pool(self, trace):
        sim = ClusterPoolSimulator()
        report = sim.run(trace, StaticPoolPolicy(size=1))
        assert report.percentile(99) == pytest.approx(sim.cold_start_seconds)

    def test_policy_sees_only_history(self, trace):
        seen = []

        class SpyPolicy:
            def target(self, hour, recent_counts):
                seen.append((hour, recent_counts.size))
                return 0

        ClusterPoolSimulator().run(trace, SpyPolicy())
        assert all(size == hour for hour, size in seen)

    def test_invalid_latency_config(self):
        with pytest.raises(ValueError):
            ClusterPoolSimulator(cold_start_seconds=1.0, warm_latency_seconds=5.0)

    def test_empty_report_percentile(self):
        from repro.infra.pool import PoolReport

        report = PoolReport(np.array([]), 0, 0, 0.0)
        assert report.percentile(99) == 0.0
        assert report.mean_latency == 0.0
        assert report.hit_rate == 0.0
