"""Cross-layer integration tests: the services composed, not in isolation.

These mirror the paper's Viewpoint 2 (autonomy spans all layers): a
learned component trained at one layer must plug into and improve the
behaviour of another.
"""

import numpy as np
import pytest

from repro.core.cardinality import LearnedCardinalityModel, MicromodelTrainer
from repro.core.peregrine import WorkloadFeedback, WorkloadRepository
from repro.core.steering import SteeringService
from repro.engine import (
    ClusterExecutor,
    DefaultCardinalityEstimator,
    DefaultCostModel,
    Optimizer,
    TrueCardinalityModel,
    compile_stages,
)
from repro.ml import ModelRegistry
from repro.workloads import ScopeWorkloadGenerator


@pytest.fixture(scope="module")
def world():
    workload = ScopeWorkloadGenerator(rng=3).generate(n_days=8)
    truth = TrueCardinalityModel(workload.catalog, seed=2)
    default = DefaultCardinalityEstimator(workload.catalog)
    return workload, truth, default


class TestLearnedCardinalityInsideOptimizer:
    """Micromodels trained from feedback change optimizer decisions."""

    def test_learned_estimates_reduce_true_cost_of_chosen_plans(self, world):
        workload, truth, default = world
        repo = WorkloadRepository().ingest(workload)
        feedback = WorkloadFeedback()
        representatives = {}
        for record in repo.records:
            if record.day < 6:
                feedback.observe_job(record, truth)
            for sig, node in record.subexpression_templates.items():
                representatives.setdefault(sig, node)
            representatives.setdefault(record.template, record.plan)
        report = MicromodelTrainer(default).train(feedback, representatives)
        learned = LearnedCardinalityModel.from_report(default, report)

        true_cost = DefaultCostModel(workload.catalog, truth)
        base_optimizer = Optimizer(workload.catalog)
        learned_optimizer = Optimizer(workload.catalog, cardinality=learned)
        base_total = 0.0
        learned_total = 0.0
        for job in workload.jobs:
            if job.day < 6:
                continue
            base_total += true_cost.cost(
                base_optimizer.optimize(job.plan).plan
            ).total
            learned_total += true_cost.cost(
                learned_optimizer.optimize(job.plan).plan
            ).total
        # Better estimates must not hurt, and typically help, the plans
        # the (estimate-driven) rules produce.
        assert learned_total <= base_total * 1.02


class TestSteeringWithLearnedCardinality:
    """Steering composes with a learned estimator as its belief source."""

    def test_steering_still_regression_free(self, world):
        workload, truth, _ = world
        true_cost = DefaultCostModel(workload.catalog, truth)
        optimizer = Optimizer(workload.catalog)
        service = SteeringService(
            optimizer,
            lambda p: true_cost.cost(p).total,
            exploration_rate=0.5,
            rng=1,
        )
        jobs = [
            (j.job_id, j.plan)
            for j in workload.jobs
            if j.is_recurring and j.day < 4
        ]
        report = service.run(jobs)
        assert report.regression_fraction() == 0.0


class TestExecutorRespectsEstimateVsTruthSplit:
    """The executor must run on truth while services see estimates."""

    def test_stage_graph_carries_both_sizings(self, world):
        workload, truth, default = world
        est_cost = DefaultCostModel(workload.catalog, default)
        true_cost = DefaultCostModel(workload.catalog, truth)
        plan = workload.jobs[0].plan
        graph = compile_stages(plan, est_cost, truth=true_cost)
        diffs = [
            s for s in graph.stages if s.actual_work != s.work
        ]
        assert diffs, "truth sizing should differ from estimates somewhere"
        from repro.engine.executor import OPERATOR_RUNTIME_FACTORS

        report = ClusterExecutor(noise=0.0, rng=0).run(graph)
        for stage, run in zip(graph.stages, report.runs):
            factor = OPERATOR_RUNTIME_FACTORS.get(stage.operator, 1.0)
            assert run.duration == pytest.approx(
                stage.true_duration() * factor
            )


class TestRegistryRoundTripWithRealModels:
    def test_flight_and_promote_a_cardinality_model(self, world):
        workload, truth, default = world
        registry = ModelRegistry(rng=0)
        v1 = registry.register("cardinality", default)
        registry.promote("cardinality", v1)
        repo = WorkloadRepository().ingest(workload)
        feedback = WorkloadFeedback()
        representatives = {}
        for record in repo.records:
            if record.day < 5:
                feedback.observe_job(record, truth)
            representatives.setdefault(record.template, record.plan)
            for sig, node in record.subexpression_templates.items():
                representatives.setdefault(sig, node)
        report = MicromodelTrainer(default).train(feedback, representatives)
        learned = LearnedCardinalityModel.from_report(default, report)
        v2 = registry.register("cardinality", learned)
        registry.flight("cardinality", v2, fraction=0.5)
        # Record q-error-ish metrics for both and evaluate the flight.
        for record in repo.records[:40]:
            actual = truth.estimate(record.plan)
            for version, model in ((v1, default), (v2, learned)):
                estimate = model.estimate(record.plan)
                error = abs(np.log1p(estimate) - np.log1p(actual))
                registry.record_metric("cardinality", version, error)
        outcome = registry.evaluate_flight("cardinality")
        assert outcome is True  # the learned model wins and is promoted
        assert registry.production("cardinality").model is learned
