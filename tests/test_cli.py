"""Tests for the repro command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])

    def test_defaults(self):
        args = build_parser().parse_args(["stats"])
        assert args.days == 7
        assert args.seed == 0


class TestCommands:
    def test_stats_prints_calibrated_fractions(self, capsys):
        assert main(["stats", "--days", "3", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "recurring_fraction" in out
        assert "dependency_fraction" in out

    def test_explain_shows_logical_and_optimized(self, capsys):
        assert main(["explain", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "(logical):" in out
        assert "optimized:" in out
        assert "Scan [" in out

    def test_algorithms_search(self, capsys):
        assert main(["algorithms", "bandit"]) == 0
        out = capsys.readouterr().out
        assert "linucb" in out

    def test_algorithms_no_match(self, capsys):
        assert main(["algorithms", "zzzznothing"]) == 1

    def test_doppler_accuracy(self, capsys):
        assert main(["doppler", "--customers", "60"]) == 0
        out = capsys.readouterr().out
        assert "recommendation accuracy" in out

    def test_seagull(self, capsys):
        assert main(["seagull", "--servers", "12"]) == 0
        out = capsys.readouterr().out
        assert "heuristic accuracy" in out

    def test_moneyball(self, capsys):
        assert main(["moneyball", "--tenants", "20"]) == 0
        out = capsys.readouterr().out
        assert "predictable tenants" in out
        assert "moneyball" in out
