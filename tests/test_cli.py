"""Tests for the repro command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])

    def test_defaults(self):
        args = build_parser().parse_args(["stats"])
        assert args.days == 7
        assert args.seed == 0

    def test_every_subcommand_accepts_trace(self):
        parser = build_parser()
        for argv in (
            ["stats", "--trace"],
            ["moneyball", "--trace"],
            ["seagull", "--trace"],
            ["doppler", "--trace"],
            ["explain", "--trace"],
            ["algorithms", "bandit", "--trace"],
            ["trace", "--trace"],
        ):
            assert parser.parse_args(argv).trace is True


class TestCommands:
    def test_stats_prints_calibrated_fractions(self, capsys):
        assert main(["stats", "--days", "3", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "recurring_fraction" in out
        assert "dependency_fraction" in out

    def test_explain_shows_logical_and_optimized(self, capsys):
        assert main(["explain", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "(logical):" in out
        assert "optimized:" in out
        assert "Scan [" in out

    def test_algorithms_search(self, capsys):
        assert main(["algorithms", "bandit"]) == 0
        out = capsys.readouterr().out
        assert "linucb" in out

    def test_algorithms_no_match(self, capsys):
        assert main(["algorithms", "zzzznothing"]) == 1

    def test_doppler_accuracy(self, capsys):
        assert main(["doppler", "--customers", "60"]) == 0
        out = capsys.readouterr().out
        assert "recommendation accuracy" in out

    def test_seagull(self, capsys):
        assert main(["seagull", "--servers", "12"]) == 0
        out = capsys.readouterr().out
        assert "heuristic accuracy" in out

    def test_moneyball(self, capsys):
        assert main(["moneyball", "--tenants", "20"]) == 0
        out = capsys.readouterr().out
        assert "predictable tenants" in out
        assert "moneyball" in out


class TestTraceFlag:
    """Every subcommand runs through the runtime, so --trace works uniformly."""

    def _run_traced(self, capsys, argv):
        assert main([*argv, "--trace"]) == 0
        out = capsys.readouterr().out
        assert "== span tree ==" in out
        assert "== per-layer rollup ==" in out
        return out

    def test_stats_trace(self, capsys):
        out = self._run_traced(capsys, ["stats", "--days", "2"])
        assert "cli.stats" in out
        assert "workload.generate" in out

    def test_moneyball_trace(self, capsys):
        out = self._run_traced(capsys, ["moneyball", "--tenants", "12"])
        assert "cli.moneyball" in out
        assert "moneyball.report" in out

    def test_seagull_trace(self, capsys):
        out = self._run_traced(capsys, ["seagull", "--servers", "8"])
        assert "cli.seagull" in out
        assert "seagull.recommend" in out

    def test_doppler_trace(self, capsys):
        out = self._run_traced(capsys, ["doppler", "--customers", "40"])
        assert "cli.doppler" in out
        assert "doppler.observe" in out

    def test_explain_trace(self, capsys):
        out = self._run_traced(capsys, ["explain"])
        assert "cli.explain" in out
        assert "engine.optimizer.optimize" in out

    def test_algorithms_trace(self, capsys):
        out = self._run_traced(capsys, ["algorithms", "bandit"])
        assert "cli.algorithms" in out
        assert "algorithmstore.search" in out

    def test_untraced_commands_stay_quiet(self, capsys):
        assert main(["stats", "--days", "2"]) == 0
        out = capsys.readouterr().out
        assert "== span tree ==" not in out


class TestFabricCommand:
    """The control plane behind one subcommand."""

    def test_list_shows_pipelines_without_running(self, capsys):
        assert main(["fabric", "--list"]) == 0
        out = capsys.readouterr().out
        for service in ("steering", "cloudviews", "seagull", "feedback"):
            assert service in out
        assert "stages" in out
        assert "fabric:" not in out  # did not run

    def test_short_run_reports_health(self, capsys):
        assert main(["fabric", "--days", "2", "--services", "moneyball,doppler"]) == 0
        out = capsys.readouterr().out
        assert "fabric: 2 days, 2 services" in out
        assert "moneyball.observe" in out
        assert "lifecycle:" in out

    def test_injected_fault_degrades_but_run_completes(self, capsys):
        assert main([
            "fabric", "--days", "2", "--services", "seagull,moneyball",
            "--inject-fault", "seagull:recommend:1:3",
        ]) == 0
        out = capsys.readouterr().out
        assert "fabric: 2 days" in out
        assert "injected faults fired: 3" in out

    def test_unknown_service_rejected(self, capsys):
        assert main(["fabric", "--days", "1", "--services", "teleport"]) == 1
        err = capsys.readouterr().err
        assert "repro fabric: error:" in err
        assert "unknown fleet services" in err

    def test_checkpoint_resume_round_trip(self, tmp_path, capsys):
        path = str(tmp_path / "fab.ckpt")
        args = ["--days", "3", "--services", "moneyball,seagull,doppler"]
        assert main(["fabric", *args]) == 0
        straight = capsys.readouterr().out
        assert main([
            "fabric", *args, "--checkpoint", path, "--checkpoint-day", "1",
        ]) == 0
        interrupted = capsys.readouterr().out
        assert main(["fabric", *args, "--resume", path]) == 0
        resumed = capsys.readouterr().out
        assert interrupted == straight
        assert resumed == straight


class TestFailureExits:
    """Every subcommand fails loudly: exit 1 plus one stderr error line."""

    @pytest.mark.parametrize(
        ("argv", "needle"),
        [
            pytest.param(
                ["fabric", "--days", "1", "--services", "teleport"],
                "unknown fleet services",
                id="fabric-unknown-service",
            ),
            pytest.param(
                ["fabric", "--days", "3", "--resume", "no-such.ckpt"],
                "no-such.ckpt",
                id="fabric-missing-checkpoint",
            ),
            pytest.param(
                [
                    "fabric", "--days", "1", "--services", "doppler",
                    "--inject-fault", "doppler:teleport",
                ],
                "unknown stage",
                id="fabric-bad-fault-spec",
            ),
            pytest.param(
                ["serve", "--requests", "0"],
                "--requests must be >= 1",
                id="serve-zero-requests",
            ),
            pytest.param(
                ["serve", "--resume", "no-such.ckpt"],
                "no-such.ckpt",
                id="serve-missing-checkpoint",
            ),
        ],
    )
    def test_failure_exits_nonzero_with_one_line(self, capsys, argv, needle):
        assert main(argv) == 1
        err = capsys.readouterr().err
        assert err.startswith(f"repro {argv[0]}: error:")
        assert needle in err
        assert err.count("\n") == 1  # exactly one line, no traceback

    def test_resume_past_target_day_is_an_error(self, tmp_path, capsys):
        path = str(tmp_path / "fab.ckpt")
        assert main([
            "fabric", "--days", "2", "--services", "doppler",
            "--checkpoint", path,
        ]) == 0
        capsys.readouterr()
        assert main(["fabric", "--days", "1", "--resume", path]) == 1
        err = capsys.readouterr().err
        assert "repro fabric: error:" in err
        assert "nothing to run" in err


class TestTraceCommand:
    """The end-to-end traced scenario: workload -> engine -> service."""

    def test_renders_all_layers(self, capsys):
        assert main(["trace", "--jobs", "3"]) == 0
        out = capsys.readouterr().out
        assert "== span tree ==" in out
        for needle in (
            "cli.trace",
            "workload.generate",
            "infra.des.run",
            "engine.optimizer.optimize",
            "engine.executor.run",
            "steering.observe",
        ):
            assert needle in out, needle

    def test_rollup_covers_all_layers(self, capsys):
        assert main(["trace", "--jobs", "3"]) == 0
        rollup = capsys.readouterr().out.split("== per-layer rollup ==")[1]
        for layer in ("workload", "infra", "engine", "service"):
            assert layer in rollup, layer

    def test_reports_export_counts(self, capsys):
        assert main(["trace", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "metric points exported" in out

    def test_simulated_quantities_deterministic_given_seed(self, capsys):
        def sim_runtimes():
            return [
                line.split("sim_runtime=")[1]
                for line in capsys.readouterr().out.splitlines()
                if "sim_runtime=" in line
            ]

        assert main(["trace", "--jobs", "2", "--seed", "7"]) == 0
        first = sim_runtimes()
        assert main(["trace", "--jobs", "2", "--seed", "7"]) == 0
        # Simulated quantities are reproducible; wall times are not.
        assert first and first == sim_runtimes()
