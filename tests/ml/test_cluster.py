"""Tests for k-means and silhouette score."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import KMeans, NotFittedError, silhouette_score


@pytest.fixture
def three_blobs():
    rng = np.random.default_rng(2)
    centers = np.array([[0, 0], [10, 10], [-10, 10]], dtype=float)
    points = np.vstack(
        [rng.normal(c, 0.5, size=(40, 2)) for c in centers]
    )
    labels = np.repeat([0, 1, 2], 40)
    return points, labels, centers


class TestKMeans:
    def test_recovers_blob_structure(self, three_blobs):
        points, truth, _ = three_blobs
        km = KMeans(n_clusters=3, rng=0).fit(points)
        # Clusters must be pure: every true blob maps to one predicted label.
        for blob in range(3):
            predicted = km.labels_[truth == blob]
            assert len(set(predicted.tolist())) == 1

    def test_centers_near_true_centers(self, three_blobs):
        points, _, centers = three_blobs
        km = KMeans(n_clusters=3, rng=0).fit(points)
        for c in centers:
            assert np.min(np.linalg.norm(km.centers_ - c, axis=1)) < 1.0

    def test_predict_matches_fit_labels(self, three_blobs):
        points, _, _ = three_blobs
        km = KMeans(n_clusters=3, rng=0).fit(points)
        np.testing.assert_array_equal(km.predict(points), km.labels_)

    def test_inertia_decreases_with_more_clusters(self, three_blobs):
        points, _, _ = three_blobs
        inertias = [
            KMeans(n_clusters=k, rng=0).fit(points).inertia_ for k in (1, 2, 3)
        ]
        assert inertias[0] > inertias[1] > inertias[2]

    def test_too_few_samples_raises(self):
        with pytest.raises(ValueError, match="at least"):
            KMeans(n_clusters=5).fit(np.ones((3, 2)))

    def test_unfit_predict_raises(self):
        with pytest.raises(NotFittedError):
            KMeans().predict(np.ones((2, 2)))

    def test_duplicate_points_do_not_crash(self):
        points = np.zeros((10, 2))
        km = KMeans(n_clusters=2, rng=0).fit(points)
        assert km.inertia_ == pytest.approx(0.0)

    @settings(max_examples=15, deadline=None)
    @given(k=st.integers(1, 4), seed=st.integers(0, 1000))
    def test_property_every_point_gets_nearest_center(self, k, seed):
        rng = np.random.default_rng(seed)
        points = rng.normal(size=(30, 2))
        km = KMeans(n_clusters=k, rng=seed).fit(points)
        dists = np.linalg.norm(
            points[:, None, :] - km.centers_[None, :, :], axis=2
        )
        np.testing.assert_array_equal(km.labels_, np.argmin(dists, axis=1))


class TestSilhouette:
    def test_well_separated_blobs_score_high(self, three_blobs):
        points, truth, _ = three_blobs
        assert silhouette_score(points, truth) > 0.8

    def test_random_labels_score_low(self, three_blobs):
        points, _, _ = three_blobs
        rng = np.random.default_rng(0)
        random_labels = rng.integers(0, 3, size=points.shape[0])
        assert silhouette_score(points, random_labels) < 0.2

    def test_single_cluster_returns_zero(self):
        assert silhouette_score(np.ones((5, 2)), np.zeros(5)) == 0.0

    def test_score_in_valid_range(self, three_blobs):
        points, truth, _ = three_blobs
        score = silhouette_score(points, truth)
        assert -1.0 <= score <= 1.0
