"""Tests for the shared estimator protocol and validation helpers."""

import numpy as np
import pytest

from repro.ml import LinearRegression, Model, NotFittedError
from repro.ml.base import check_2d, check_fitted, check_xy


class TestCheck2d:
    def test_1d_becomes_column(self):
        out = check_2d(np.array([1.0, 2.0, 3.0]))
        assert out.shape == (3, 1)

    def test_2d_passes_through(self):
        x = np.ones((4, 2))
        np.testing.assert_array_equal(check_2d(x), x)

    def test_3d_rejected(self):
        with pytest.raises(ValueError, match="1-D or 2-D"):
            check_2d(np.ones((2, 2, 2)))

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one row"):
            check_2d(np.empty((0, 3)))

    def test_nan_rejected_with_name(self):
        with pytest.raises(ValueError, match="features contains"):
            check_2d(np.array([[np.nan]]), name="features")

    def test_lists_coerced(self):
        out = check_2d([[1, 2], [3, 4]])
        assert out.dtype == float


class TestCheckXy:
    def test_aligned_pair(self):
        x, y = check_xy([[1.0], [2.0]], [3.0, 4.0])
        assert x.shape == (2, 1)
        assert y.shape == (2,)

    def test_mismatch_rejected(self):
        with pytest.raises(ValueError, match="sample count"):
            check_xy(np.ones((3, 1)), np.ones(2))

    def test_nan_target_rejected(self):
        with pytest.raises(ValueError, match="non-finite"):
            check_xy(np.ones((2, 1)), [1.0, np.nan])

    def test_column_target_ravelled(self):
        _, y = check_xy(np.ones((3, 1)), np.ones((3, 1)))
        assert y.shape == (3,)


class TestCheckFitted:
    def test_raises_when_attribute_missing(self):
        with pytest.raises(NotFittedError, match="fit"):
            check_fitted(LinearRegression(), "coef_")

    def test_passes_after_fit(self):
        model = LinearRegression().fit(np.arange(4.0), np.arange(4.0))
        check_fitted(model, "coef_")  # no raise


class TestModelProtocol:
    def test_fitted_linear_regression_satisfies_protocol(self):
        model = LinearRegression()
        assert isinstance(model, Model)

    def test_duck_typed_model_satisfies_protocol(self):
        class Custom:
            def fit(self, x, y):
                return self

            def predict(self, x):
                return np.zeros(len(x))

        assert isinstance(Custom(), Model)

    def test_non_model_rejected(self):
        assert not isinstance(object(), Model)
