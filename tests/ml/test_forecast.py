"""Tests for forecasting and predictability scoring."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    HoltWinters,
    MovingAverageForecaster,
    NotFittedError,
    SeasonalNaiveForecaster,
    predictability_score,
    seasonal_decompose,
)


def seasonal_series(n_periods=10, period=24, noise=0.0, trend=0.0, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(n_periods * period)
    pattern = np.sin(2 * np.pi * t / period)
    return 10 + trend * t + 3 * pattern + rng.normal(scale=noise, size=t.size)


class TestSeasonalNaive:
    def test_repeats_last_season_exactly(self):
        series = seasonal_series(noise=0.0)
        model = SeasonalNaiveForecaster(period=24).fit(series)
        forecast = model.forecast(24)
        np.testing.assert_allclose(forecast, series[-24:])

    def test_forecast_tiles_beyond_one_period(self):
        series = np.tile(np.arange(4.0), 3)
        model = SeasonalNaiveForecaster(period=4).fit(series)
        np.testing.assert_allclose(model.forecast(10), np.tile(np.arange(4.0), 3)[:10])

    def test_too_short_series_rejected(self):
        with pytest.raises(ValueError, match="full period"):
            SeasonalNaiveForecaster(period=24).fit(np.ones(10))

    def test_unfit_forecast_raises(self):
        with pytest.raises(NotFittedError):
            SeasonalNaiveForecaster(period=2).forecast(1)

    def test_invalid_horizon(self):
        model = SeasonalNaiveForecaster(period=2).fit(np.ones(4))
        with pytest.raises(ValueError):
            model.forecast(0)


class TestMovingAverage:
    def test_constant_series(self):
        model = MovingAverageForecaster(window=5).fit(np.full(20, 7.0))
        np.testing.assert_allclose(model.forecast(3), np.full(3, 7.0))

    def test_uses_only_last_window(self):
        series = np.concatenate([np.zeros(10), np.full(5, 10.0)])
        model = MovingAverageForecaster(window=5).fit(series)
        assert model.forecast(1)[0] == pytest.approx(10.0)


class TestHoltWinters:
    def test_captures_seasonality(self):
        series = seasonal_series(noise=0.1)
        model = HoltWinters(period=24).fit(series)
        forecast = model.forecast(24)
        truth = seasonal_series(n_periods=11)[-24:]
        assert np.corrcoef(forecast, truth)[0, 1] > 0.95

    def test_captures_trend(self):
        series = seasonal_series(noise=0.0, trend=0.05)
        model = HoltWinters(period=24).fit(series)
        forecast = model.forecast(48)
        # Second forecast period should sit above the first (upward trend).
        assert forecast[24:].mean() > forecast[:24].mean()

    def test_too_short_series_rejected(self):
        with pytest.raises(ValueError, match="two periods"):
            HoltWinters(period=24).fit(np.ones(30))

    def test_invalid_smoothing_params(self):
        for bad in ({"alpha": 0.0}, {"beta": 1.0}, {"gamma": -0.1}):
            with pytest.raises(ValueError):
                HoltWinters(period=4, **bad)


class TestDecompose:
    def test_components_sum_to_series(self):
        series = seasonal_series(noise=0.5)
        d = seasonal_decompose(series, period=24)
        np.testing.assert_allclose(d.trend + d.seasonal + d.residual, series)

    def test_seasonal_component_zero_mean(self):
        d = seasonal_decompose(seasonal_series(), period=24)
        assert abs(d.seasonal[:24].mean()) < 1e-8

    def test_recovers_sine_pattern(self):
        d = seasonal_decompose(seasonal_series(noise=0.0), period=24)
        t = np.arange(24)
        expected = 3 * np.sin(2 * np.pi * t / 24)
        # interior period, away from convolution edge effects
        assert np.corrcoef(d.seasonal[24:48], expected)[0, 1] > 0.99


class TestPredictability:
    def test_perfect_seasonal_series_scores_one(self):
        series = np.tile(np.arange(24.0), 5)
        assert predictability_score(series, period=24) == pytest.approx(1.0)

    def test_white_noise_scores_low(self):
        rng = np.random.default_rng(0)
        series = rng.normal(size=240)
        assert predictability_score(series, period=24) < 0.3

    def test_noisier_series_scores_lower(self):
        clean = predictability_score(seasonal_series(noise=0.1, seed=1), 24)
        noisy = predictability_score(seasonal_series(noise=3.0, seed=1), 24)
        assert noisy < clean

    def test_constant_series_scores_one(self):
        assert predictability_score(np.full(100, 5.0), period=10) == 1.0

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_property_score_at_most_one(self, seed):
        rng = np.random.default_rng(seed)
        series = rng.normal(size=100)
        assert predictability_score(series, period=10) <= 1.0
