"""Tests for drift detectors."""

import numpy as np
import pytest

from repro.ml import PageHinkley, WindowedKSDetector


class TestPageHinkley:
    def test_no_drift_on_stationary_stream(self):
        rng = np.random.default_rng(0)
        detector = PageHinkley(delta=0.05, threshold=10.0)
        flags = [detector.update(v) for v in rng.normal(0, 0.1, 500)]
        assert not any(flags)

    def test_detects_mean_shift(self):
        rng = np.random.default_rng(0)
        detector = PageHinkley(delta=0.05, threshold=5.0)
        stream = np.concatenate(
            [rng.normal(0, 0.1, 200), rng.normal(3.0, 0.1, 200)]
        )
        flags = [detector.update(v) for v in stream]
        assert not any(flags[:200])
        assert any(flags[200:])

    def test_reset_clears_state(self):
        detector = PageHinkley(threshold=1.0)
        for v in [0.0] * 10 + [10.0] * 10:
            detector.update(v)
        detector.reset()
        assert not detector.update(0.0)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            PageHinkley(threshold=0.0)


class TestWindowedKS:
    def test_no_drift_on_same_distribution(self):
        rng = np.random.default_rng(1)
        detector = WindowedKSDetector(window=50, p_value=0.001)
        flags = [detector.update(v) for v in rng.normal(size=300)]
        assert sum(flags) == 0

    def test_detects_distribution_change(self):
        rng = np.random.default_rng(1)
        detector = WindowedKSDetector(window=50, p_value=0.01)
        stream = np.concatenate([rng.normal(0, 1, 100), rng.normal(5, 1, 100)])
        flags = [detector.update(v) for v in stream]
        assert any(flags[100:])

    def test_silent_while_filling_reference(self):
        detector = WindowedKSDetector(window=20)
        assert not any(detector.update(float(i)) for i in range(20))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            WindowedKSDetector(window=2)
        with pytest.raises(ValueError):
            WindowedKSDetector(p_value=0.0)
