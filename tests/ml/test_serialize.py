"""Tests for portable model exchange and the generic container."""

import numpy as np
import pytest

from repro.ml import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    LinearRegression,
    LogisticRegression,
    RidgeRegression,
)
from repro.ml.serialize import (
    ModelContainer,
    ModelFormatError,
    export_model,
    from_json,
    import_model,
    to_json,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestPortableFormat:
    @pytest.mark.parametrize(
        "factory",
        [LinearRegression, lambda: RidgeRegression(alpha=0.5)],
        ids=["linear", "ridge"],
    )
    def test_linear_round_trip(self, factory, rng):
        x = rng.normal(size=(40, 3))
        y = x @ np.array([1.0, -2.0, 0.5]) + 3.0
        model = factory().fit(x, y)
        restored = import_model(export_model(model))
        np.testing.assert_allclose(restored.predict(x), model.predict(x))

    def test_logistic_round_trip(self, rng):
        x = rng.normal(size=(60, 2))
        y = (x[:, 0] > 0).astype(int)
        model = LogisticRegression(n_iter=200).fit(x, y)
        restored = import_model(export_model(model))
        np.testing.assert_allclose(
            restored.predict_proba(x), model.predict_proba(x)
        )

    def test_tree_regressor_round_trip(self, rng):
        x = rng.normal(size=(80, 2))
        y = np.where(x[:, 0] > 0, 1.0, 5.0) + rng.normal(scale=0.1, size=80)
        model = DecisionTreeRegressor(max_depth=4).fit(x, y)
        restored = import_model(export_model(model))
        np.testing.assert_allclose(restored.predict(x), model.predict(x))

    def test_tree_classifier_round_trip(self, rng):
        x = rng.normal(size=(80, 2))
        y = (x[:, 1] > 0).astype(int)
        model = DecisionTreeClassifier(max_depth=4).fit(x, y)
        restored = import_model(export_model(model))
        np.testing.assert_array_equal(restored.predict(x), model.predict(x))

    def test_json_round_trip(self, rng):
        x = rng.normal(size=(20, 1))
        model = LinearRegression().fit(x, x[:, 0] * 2)
        restored = from_json(to_json(model))
        np.testing.assert_allclose(restored.coef_, model.coef_)

    def test_unfitted_model_rejected(self):
        with pytest.raises(ModelFormatError, match="not fitted"):
            export_model(LinearRegression())

    def test_unsupported_model_rejected(self):
        with pytest.raises(ModelFormatError, match="portable"):
            export_model(object())

    def test_unknown_kind_rejected(self):
        with pytest.raises(ModelFormatError, match="kind"):
            import_model({"version": 1, "kind": "quantum", "payload": {}})

    def test_wrong_version_rejected(self):
        with pytest.raises(ModelFormatError, match="version"):
            import_model({"version": 7, "kind": "linear_regression", "payload": {}})


class TestModelContainer:
    @pytest.fixture
    def container(self, rng):
        x = rng.normal(size=(30, 2))
        model = LinearRegression().fit(x, x[:, 0] + x[:, 1])
        return ModelContainer(
            model, n_features=2, name="adder", metadata={"owner": "gsl"}
        )

    def test_predict_validates_feature_count(self, container):
        with pytest.raises(ValueError, match="expects 2 features"):
            container.predict(np.ones((1, 3)))

    def test_predict_accepts_1d_row(self, container):
        out = container.predict(np.array([1.0, 2.0]))
        assert out.shape == (1,)
        assert out[0] == pytest.approx(3.0, abs=0.01)

    def test_container_round_trip(self, container, rng):
        restored = ModelContainer.from_json(container.to_json())
        assert restored.name == "adder"
        assert restored.metadata == {"owner": "gsl"}
        x = rng.normal(size=(5, 2))
        np.testing.assert_allclose(
            restored.predict(x), container.predict(x)
        )

    def test_invalid_feature_count(self):
        with pytest.raises(ValueError):
            ModelContainer(LinearRegression(), n_features=0)

    def test_container_is_serving_system_agnostic(self, container):
        # Any code that knows only the container interface can serve it.
        def serve(payload: str, features):
            hosted = ModelContainer.from_json(payload)
            return hosted.predict(features)

        out = serve(container.to_json(), np.array([[2.0, 2.0]]))
        assert out[0] == pytest.approx(4.0, abs=0.01)
