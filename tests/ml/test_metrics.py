"""Tests for metric functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.ml import (
    accuracy,
    confusion_matrix,
    f1_score,
    mae,
    mape,
    mse,
    precision,
    q_error,
    r2_score,
    recall,
    rmse,
)


class TestRegressionMetrics:
    def test_perfect_prediction(self):
        y = np.array([1.0, 2.0, 3.0])
        assert mse(y, y) == 0.0
        assert rmse(y, y) == 0.0
        assert mae(y, y) == 0.0
        assert mape(y, y) == 0.0
        assert r2_score(y, y) == 1.0

    def test_known_values(self):
        t = np.array([0.0, 0.0])
        p = np.array([1.0, 3.0])
        assert mse(t, p) == pytest.approx(5.0)
        assert mae(t, p) == pytest.approx(2.0)
        assert rmse(t, p) == pytest.approx(np.sqrt(5.0))

    def test_r2_of_mean_predictor_is_zero(self):
        y = np.array([1.0, 2.0, 3.0, 4.0])
        assert r2_score(y, np.full(4, y.mean())) == pytest.approx(0.0)

    def test_r2_negative_for_bad_model(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, np.array([3.0, 1.0, -5.0])) < 0.0

    def test_r2_constant_target(self):
        y = np.full(5, 2.0)
        assert r2_score(y, y) == 1.0
        assert r2_score(y, y + 1) == 0.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            mse(np.ones(3), np.ones(4))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mae(np.array([]), np.array([]))

    @settings(max_examples=25, deadline=None)
    @given(
        y=hnp.arrays(float, 10, elements=st.floats(-1e3, 1e3)),
        p=hnp.arrays(float, 10, elements=st.floats(-1e3, 1e3)),
    )
    def test_property_mse_ge_zero_and_rmse_consistent(self, y, p):
        assert mse(y, p) >= 0.0
        assert rmse(y, p) == pytest.approx(np.sqrt(mse(y, p)))


class TestQError:
    def test_perfect_is_one(self):
        y = np.array([10.0, 100.0])
        np.testing.assert_allclose(q_error(y, y), [1.0, 1.0])

    def test_symmetric(self):
        t = np.array([10.0])
        p = np.array([100.0])
        assert q_error(t, p)[0] == q_error(p, t)[0] == pytest.approx(10.0)

    def test_floor_protects_zero(self):
        assert np.isfinite(q_error(np.array([0.0]), np.array([5.0]))).all()

    @settings(max_examples=25, deadline=None)
    @given(
        t=hnp.arrays(float, 5, elements=st.floats(1, 1e6)),
        p=hnp.arrays(float, 5, elements=st.floats(1, 1e6)),
    )
    def test_property_q_error_ge_one(self, t, p):
        assert np.all(q_error(t, p) >= 1.0)


class TestClassificationMetrics:
    def test_accuracy(self):
        assert accuracy([1, 0, 1], [1, 1, 1]) == pytest.approx(2 / 3)

    def test_confusion_matrix(self):
        cm = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1])
        np.testing.assert_array_equal(cm, [[1, 1], [0, 2]])

    def test_precision_recall_f1(self):
        t = [1, 1, 0, 0]
        p = [1, 0, 1, 0]
        assert precision(t, p) == pytest.approx(0.5)
        assert recall(t, p) == pytest.approx(0.5)
        assert f1_score(t, p) == pytest.approx(0.5)

    def test_precision_no_positive_predictions(self):
        assert precision([1, 1], [0, 0]) == 0.0

    def test_recall_no_positives(self):
        assert recall([0, 0], [1, 1]) == 0.0

    def test_f1_zero_when_both_zero(self):
        assert f1_score([1, 0], [0, 1]) == 0.0

    def test_perfect_classifier(self):
        t = [0, 1, 0, 1]
        assert accuracy(t, t) == 1.0
        assert f1_score(t, t) == 1.0
