"""Tests for the linear model family."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    LinearRegression,
    LogisticRegression,
    NotFittedError,
    QuantileRegression,
    RidgeRegression,
)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestLinearRegression:
    def test_recovers_exact_line(self):
        x = np.arange(10.0)
        y = 3.0 * x + 2.0
        model = LinearRegression().fit(x, y)
        assert model.coef_[0] == pytest.approx(3.0)
        assert model.intercept_ == pytest.approx(2.0)

    def test_recovers_multivariate_coefficients(self, rng):
        x = rng.normal(size=(200, 3))
        true_coef = np.array([1.5, -2.0, 0.5])
        y = x @ true_coef + 4.0 + rng.normal(scale=0.01, size=200)
        model = LinearRegression().fit(x, y)
        np.testing.assert_allclose(model.coef_, true_coef, atol=0.01)
        assert model.intercept_ == pytest.approx(4.0, abs=0.01)

    def test_no_intercept(self):
        x = np.arange(1.0, 6.0)
        y = 2.0 * x
        model = LinearRegression(fit_intercept=False).fit(x, y)
        assert model.intercept_ == 0.0
        assert model.coef_[0] == pytest.approx(2.0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            LinearRegression().predict(np.array([[1.0]]))

    def test_feature_count_mismatch_raises(self):
        model = LinearRegression().fit(np.ones((5, 2)), np.ones(5))
        with pytest.raises(ValueError, match="features"):
            model.predict(np.ones((3, 3)))

    def test_rejects_nan_input(self):
        x = np.array([[1.0], [np.nan]])
        with pytest.raises(ValueError, match="non-finite"):
            LinearRegression().fit(x, np.array([1.0, 2.0]))

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="sample count"):
            LinearRegression().fit(np.ones((4, 1)), np.ones(3))

    @settings(max_examples=25, deadline=None)
    @given(
        slope=st.floats(-100, 100, allow_nan=False),
        intercept=st.floats(-100, 100, allow_nan=False),
    )
    def test_property_exact_fit_on_noiseless_line(self, slope, intercept):
        x = np.linspace(0, 10, 20)
        y = slope * x + intercept
        model = LinearRegression().fit(x, y)
        np.testing.assert_allclose(model.predict(x), y, atol=1e-6 + 1e-8 * abs(slope))


class TestRidgeRegression:
    def test_zero_alpha_matches_ols(self, rng):
        x = rng.normal(size=(50, 2))
        y = x @ np.array([1.0, 2.0]) + rng.normal(size=50)
        ols = LinearRegression().fit(x, y)
        ridge = RidgeRegression(alpha=0.0).fit(x, y)
        np.testing.assert_allclose(ridge.coef_, ols.coef_, atol=1e-8)

    def test_shrinks_coefficients(self, rng):
        x = rng.normal(size=(50, 2))
        y = x @ np.array([5.0, -5.0])
        small = RidgeRegression(alpha=0.1).fit(x, y)
        large = RidgeRegression(alpha=1000.0).fit(x, y)
        assert np.linalg.norm(large.coef_) < np.linalg.norm(small.coef_)

    def test_intercept_not_penalized(self):
        # Constant target: heavy regularization must not pull intercept to 0.
        x = np.linspace(0, 1, 30)
        y = np.full(30, 10.0)
        model = RidgeRegression(alpha=1e6).fit(x, y)
        assert model.predict(np.array([[0.5]]))[0] == pytest.approx(10.0, abs=0.1)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            RidgeRegression(alpha=-1.0)

    def test_handles_collinear_features(self):
        # OLS would be ill-posed; ridge must stay finite.
        x = np.column_stack([np.arange(10.0), np.arange(10.0)])
        y = np.arange(10.0)
        model = RidgeRegression(alpha=1.0).fit(x, y)
        assert np.all(np.isfinite(model.coef_))


class TestLogisticRegression:
    def test_separable_data(self, rng):
        x = np.concatenate([rng.normal(-3, 0.5, 50), rng.normal(3, 0.5, 50)])
        y = np.concatenate([np.zeros(50), np.ones(50)])
        model = LogisticRegression(n_iter=2000).fit(x, y)
        assert np.mean(model.predict(x) == y) > 0.95

    def test_proba_in_unit_interval(self, rng):
        x = rng.normal(size=(40, 2))
        y = (x[:, 0] > 0).astype(int)
        model = LogisticRegression().fit(x, y)
        proba = model.predict_proba(x)
        assert np.all((proba >= 0) & (proba <= 1))

    def test_rejects_nonbinary_labels(self):
        with pytest.raises(ValueError, match="0/1"):
            LogisticRegression().fit(np.ones((3, 1)), np.array([0, 1, 2]))

    def test_invalid_hyperparams(self):
        with pytest.raises(ValueError):
            LogisticRegression(learning_rate=0)
        with pytest.raises(ValueError):
            LogisticRegression(n_iter=0)


class TestQuantileRegression:
    def test_median_on_symmetric_noise(self, rng):
        x = np.linspace(0, 10, 200)
        y = 2.0 * x + rng.normal(scale=0.5, size=200)
        model = QuantileRegression(quantile=0.5).fit(x, y)
        assert model.coef_[0] == pytest.approx(2.0, abs=0.1)

    def test_high_quantile_sits_above_median(self, rng):
        x = np.linspace(0, 10, 300)
        y = x + rng.exponential(scale=2.0, size=300)
        q50 = QuantileRegression(0.5).fit(x, y)
        q90 = QuantileRegression(0.9).fit(x, y)
        grid = np.linspace(0, 10, 20)
        assert np.all(q90.predict(grid) >= q50.predict(grid) - 1e-6)

    def test_coverage_close_to_quantile(self, rng):
        x = np.linspace(0, 5, 400)
        y = x + rng.normal(size=400)
        model = QuantileRegression(0.8).fit(x, y)
        coverage = np.mean(y <= model.predict(x))
        assert coverage == pytest.approx(0.8, abs=0.07)

    def test_invalid_quantile_rejected(self):
        for q in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                QuantileRegression(quantile=q)
