"""Tests for multi-armed and contextual bandits."""

import numpy as np
import pytest

from repro.ml import (
    EpsilonGreedyBandit,
    LinUCB,
    ThompsonSamplingBandit,
    UCB1Bandit,
)


def run_bernoulli(bandit, probabilities, n_rounds, rng):
    """Play a Bernoulli bandit; return the fraction of optimal pulls."""
    optimal = int(np.argmax(probabilities))
    optimal_pulls = 0
    for _ in range(n_rounds):
        arm = bandit.select()
        reward = float(rng.random() < probabilities[arm])
        bandit.update(arm, reward)
        if arm == optimal:
            optimal_pulls += 1
    return optimal_pulls / n_rounds


PROBS = [0.2, 0.5, 0.8]


class TestStochasticBandits:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: EpsilonGreedyBandit(3, epsilon=0.1, rng=0),
            lambda: UCB1Bandit(3, rng=0),
            lambda: ThompsonSamplingBandit(3, rng=0),
        ],
        ids=["eps-greedy", "ucb1", "thompson"],
    )
    def test_converges_to_best_arm(self, factory):
        rng = np.random.default_rng(1)
        bandit = factory()
        fraction = run_bernoulli(bandit, PROBS, 2000, rng)
        assert fraction > 0.6
        assert bandit.best_arm() == 2

    def test_ucb_tries_every_arm_first(self):
        bandit = UCB1Bandit(4, rng=0)
        pulled = []
        for _ in range(4):
            arm = bandit.select()
            pulled.append(arm)
            bandit.update(arm, 0.0)
        assert sorted(pulled) == [0, 1, 2, 3]

    def test_epsilon_zero_is_pure_greedy(self):
        bandit = EpsilonGreedyBandit(2, epsilon=0.0, rng=0)
        bandit.update(1, 1.0)
        assert all(bandit.select() == 1 for _ in range(20))

    def test_epsilon_one_explores_uniformly(self):
        bandit = EpsilonGreedyBandit(3, epsilon=1.0, rng=0)
        bandit.update(0, 100.0)
        selections = {bandit.select() for _ in range(100)}
        assert selections == {0, 1, 2}

    def test_thompson_rejects_out_of_range_reward(self):
        bandit = ThompsonSamplingBandit(2, rng=0)
        with pytest.raises(ValueError):
            bandit.update(0, 2.0)

    def test_update_out_of_range_arm(self):
        with pytest.raises(ValueError):
            EpsilonGreedyBandit(2).update(5, 1.0)

    def test_invalid_constructor_args(self):
        with pytest.raises(ValueError):
            EpsilonGreedyBandit(0)
        with pytest.raises(ValueError):
            EpsilonGreedyBandit(2, epsilon=1.5)


class TestLinUCB:
    def test_learns_context_dependent_best_arm(self):
        # Arm 0 is best when context[0] > 0, arm 1 otherwise.
        rng = np.random.default_rng(0)
        bandit = LinUCB(n_arms=2, n_features=2, alpha=0.5, rng=0)
        for _ in range(600):
            ctx = rng.normal(size=2)
            arm = bandit.select(ctx)
            reward = ctx[0] if arm == 0 else -ctx[0]
            bandit.update(arm, ctx, reward)
        # After training, the point estimate should pick the right arm.
        pos = np.array([1.0, 0.0])
        neg = np.array([-1.0, 0.0])
        assert bandit.point_estimate(0, pos) > bandit.point_estimate(1, pos)
        assert bandit.point_estimate(1, neg) > bandit.point_estimate(0, neg)

    def test_scores_shape(self):
        bandit = LinUCB(3, 4, rng=0)
        assert bandit.scores(np.ones(4)).shape == (3,)

    def test_context_dimension_checked(self):
        bandit = LinUCB(2, 3, rng=0)
        with pytest.raises(ValueError, match="features"):
            bandit.select(np.ones(5))
        with pytest.raises(ValueError, match="features"):
            bandit.update(0, np.ones(2), 1.0)

    def test_exploration_bonus_shrinks_with_data(self):
        bandit = LinUCB(1, 2, alpha=1.0, rng=0)
        ctx = np.array([1.0, 0.5])
        before = bandit.scores(ctx)[0] - bandit.point_estimate(0, ctx)
        for _ in range(50):
            bandit.update(0, ctx, 0.0)
        after = bandit.scores(ctx)[0] - bandit.point_estimate(0, ctx)
        assert after < before

    def test_invalid_constructor_args(self):
        with pytest.raises(ValueError):
            LinUCB(0, 1)
        with pytest.raises(ValueError):
            LinUCB(1, 0)
        with pytest.raises(ValueError):
            LinUCB(1, 1, alpha=-1)
