"""Tests for the Vamsa-style lineage tracker."""

import networkx as nx
import pytest

from repro.ml import LineageTracker


@pytest.fixture
def pipeline():
    """A typical ML-for-Systems pipeline recorded end to end."""
    tracker = LineageTracker()
    raw = tracker.record("dataset", "cosmos-telemetry-week24", source="kusto")
    features = tracker.record(
        "featureset", "per-template-params", [raw], operation="featurize"
    )
    model = tracker.record(
        "model", "cardinality-v3", [features], operation="train", algo="ridge"
    )
    deployment = tracker.record(
        "deployment", "cardinality-v3@prod", [model], operation="deploy"
    )
    metric = tracker.record(
        "metric", "qerror-daily", [deployment], operation="monitor"
    )
    return tracker, raw, features, model, deployment, metric


class TestRecording:
    def test_ids_are_unique_and_kinded(self, pipeline):
        tracker, raw, *_ = pipeline
        assert raw.artifact_id.startswith("dataset-")
        assert len({a.artifact_id for a in tracker.by_kind("dataset")}) == 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            LineageTracker().record("spell", "abracadabra")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="name"):
            LineageTracker().record("dataset", "")

    def test_unknown_input_rejected(self):
        tracker = LineageTracker()
        with pytest.raises(KeyError):
            tracker.record("model", "m", ["dataset-99999"])

    def test_metadata_accessible(self, pipeline):
        tracker, raw, *_ = pipeline
        assert raw.meta("source") == "kusto"
        assert raw.meta("missing", "fallback") == "fallback"


class TestQueries:
    def test_upstream_of_deployment_reaches_raw_data(self, pipeline):
        tracker, raw, features, model, deployment, _ = pipeline
        ancestors = tracker.upstream(deployment)
        assert raw in ancestors
        assert features in ancestors
        assert model in ancestors

    def test_downstream_of_dataset_is_blast_radius(self, pipeline):
        tracker, raw, _, model, deployment, metric = pipeline
        victims = tracker.downstream(raw)
        assert model in victims
        assert deployment in victims
        assert metric in victims

    def test_leaf_has_no_downstream(self, pipeline):
        tracker, *_, metric = pipeline
        assert tracker.downstream(metric) == []

    def test_path_carries_operations(self, pipeline):
        tracker, raw, _, _, deployment, _ = pipeline
        path = tracker.path_between(raw, deployment)
        operations = [op for _, op in path[1:]]
        assert operations == ["featurize", "train", "deploy"]

    def test_no_path_raises(self, pipeline):
        tracker, raw, *_ = pipeline
        other = tracker.record("dataset", "unrelated")
        with pytest.raises(nx.NetworkXNoPath):
            tracker.path_between(raw, other)

    def test_unknown_artifact_raises(self, pipeline):
        tracker, *_ = pipeline
        with pytest.raises(KeyError):
            tracker.upstream("model-99999")


class TestFanOut:
    def test_shared_dataset_feeds_multiple_models(self):
        tracker = LineageTracker()
        raw = tracker.record("dataset", "shared")
        m1 = tracker.record("model", "cardinality", [raw], operation="train")
        m2 = tracker.record("model", "costmodel", [raw], operation="train")
        assert {a.name for a in tracker.downstream(raw)} == {
            "cardinality",
            "costmodel",
        }
        assert tracker.upstream(m1) == tracker.upstream(m2)


class TestIncidentReport:
    def test_report_sections(self, pipeline):
        tracker, raw, _, model, _, _ = pipeline
        report = tracker.incident_report(model)
        assert "# Lineage incident report: cardinality-v3" in report
        assert "## Derived from (2)" in report
        assert "## Contaminates (2)" in report
        assert "cosmos-telemetry-week24" in report
