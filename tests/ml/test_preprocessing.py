"""Tests for preprocessing utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    NotFittedError,
    OneHotEncoder,
    StandardScaler,
    polynomial_features,
    train_test_split,
)


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        x = rng.normal(5, 3, size=(100, 2))
        scaled = StandardScaler().fit_transform(x)
        np.testing.assert_allclose(scaled.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(scaled.std(axis=0), 1.0, atol=1e-10)

    def test_constant_column_not_divided_by_zero(self):
        x = np.column_stack([np.ones(10), np.arange(10.0)])
        scaled = StandardScaler().fit_transform(x)
        assert np.all(np.isfinite(scaled))
        np.testing.assert_allclose(scaled[:, 0], 0.0)

    def test_inverse_transform_roundtrip(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(30, 3))
        scaler = StandardScaler().fit(x)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(x)), x)

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.ones((2, 2)))

    def test_feature_count_checked(self):
        scaler = StandardScaler().fit(np.ones((5, 2)))
        with pytest.raises(ValueError):
            scaler.transform(np.ones((5, 3)))


class TestOneHotEncoder:
    def test_basic_encoding(self):
        enc = OneHotEncoder().fit(["a", "b", "c"])
        out = enc.transform(["b", "a"])
        np.testing.assert_array_equal(out, [[0, 1, 0], [1, 0, 0]])

    def test_unknown_ignored_by_default(self):
        enc = OneHotEncoder().fit(["a", "b"])
        np.testing.assert_array_equal(enc.transform(["z"]), [[0, 0]])

    def test_unknown_error_mode(self):
        enc = OneHotEncoder(handle_unknown="error").fit(["a"])
        with pytest.raises(ValueError, match="unknown category"):
            enc.transform(["b"])

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            OneHotEncoder(handle_unknown="explode")

    def test_duplicate_fit_values_collapse(self):
        enc = OneHotEncoder().fit(["x", "x", "y"])
        assert enc.categories_ == ["x", "y"]


class TestTrainTestSplit:
    def test_partition_is_complete_and_disjoint(self):
        x = np.arange(20).reshape(-1, 1)
        y = np.arange(20)
        xtr, xte, ytr, yte = train_test_split(x, y, 0.25, rng=0)
        assert len(xtr) + len(xte) == 20
        assert set(ytr.tolist()) | set(yte.tolist()) == set(range(20))
        assert not set(ytr.tolist()) & set(yte.tolist())

    def test_rows_stay_aligned(self):
        x = np.arange(20).reshape(-1, 1) * 10
        y = np.arange(20)
        xtr, xte, ytr, yte = train_test_split(x, y, 0.3, rng=1)
        np.testing.assert_array_equal(xtr[:, 0], ytr * 10)
        np.testing.assert_array_equal(xte[:, 0], yte * 10)

    def test_deterministic_given_seed(self):
        x = np.arange(10).reshape(-1, 1)
        y = np.arange(10)
        a = train_test_split(x, y, 0.2, rng=5)
        b = train_test_split(x, y, 0.2, rng=5)
        np.testing.assert_array_equal(a[0], b[0])

    def test_invalid_fraction(self):
        for frac in (0.0, 1.0, -0.5):
            with pytest.raises(ValueError):
                train_test_split(np.ones((4, 1)), np.ones(4), frac)

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(4, 50),
        frac=st.floats(0.1, 0.5),
        seed=st.integers(0, 100),
    )
    def test_property_test_size_close_to_fraction(self, n, frac, seed):
        x = np.ones((n, 1))
        y = np.zeros(n)
        _, xte, _, _ = train_test_split(x, y, frac, rng=seed)
        assert abs(len(xte) - frac * n) <= 1


class TestPolynomialFeatures:
    def test_degree_two(self):
        x = np.array([[2.0, 3.0]])
        out = polynomial_features(x, degree=2)
        np.testing.assert_array_equal(out, [[2.0, 3.0, 4.0, 9.0]])

    def test_degree_one_identity(self):
        x = np.arange(6.0).reshape(3, 2)
        np.testing.assert_array_equal(polynomial_features(x, 1), x)

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            polynomial_features(np.ones((2, 1)), degree=0)
