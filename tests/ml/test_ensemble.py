"""Tests for tree ensembles."""

import numpy as np
import pytest

from repro.ml import (
    GradientBoostingRegressor,
    NotFittedError,
    RandomForestRegressor,
    mse,
)


@pytest.fixture
def friedman_like(rng=np.random.default_rng(3)):
    x = rng.uniform(size=(300, 4))
    y = 10 * np.sin(np.pi * x[:, 0] * x[:, 1]) + 20 * (x[:, 2] - 0.5) ** 2 + x[:, 3]
    return x, y


class TestRandomForestRegressor:
    def test_beats_single_deep_tree_on_noise(self, friedman_like):
        x, y = friedman_like
        rng = np.random.default_rng(5)
        noisy = y + rng.normal(scale=2.0, size=y.shape)
        train = slice(0, 200)
        test = slice(200, 300)
        from repro.ml import DecisionTreeRegressor

        tree = DecisionTreeRegressor(max_depth=12).fit(x[train], noisy[train])
        forest = RandomForestRegressor(n_trees=20, max_depth=12, rng=1).fit(
            x[train], noisy[train]
        )
        assert mse(y[test], forest.predict(x[test])) < mse(
            y[test], tree.predict(x[test])
        )

    def test_deterministic_given_seed(self, friedman_like):
        x, y = friedman_like
        a = RandomForestRegressor(n_trees=5, rng=42).fit(x, y).predict(x[:10])
        b = RandomForestRegressor(n_trees=5, rng=42).fit(x, y).predict(x[:10])
        np.testing.assert_allclose(a, b)

    def test_predict_std_nonnegative(self, friedman_like):
        x, y = friedman_like
        forest = RandomForestRegressor(n_trees=8, rng=0).fit(x, y)
        assert np.all(forest.predict_std(x[:20]) >= 0)

    def test_unfit_raises(self):
        with pytest.raises(NotFittedError):
            RandomForestRegressor().predict(np.ones((1, 1)))

    def test_invalid_n_trees(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_trees=0)


class TestGradientBoostingRegressor:
    def test_training_error_decreases_with_rounds(self, friedman_like):
        x, y = friedman_like
        gbm = GradientBoostingRegressor(n_trees=30, rng=0).fit(x, y)
        errors = [mse(y, pred) for pred in gbm.staged_predict(x)]
        assert errors[-1] < errors[0]
        # Error should be monotone non-increasing for squared loss on train.
        assert all(b <= a + 1e-9 for a, b in zip(errors, errors[1:]))

    def test_outperforms_mean_baseline(self, friedman_like):
        x, y = friedman_like
        gbm = GradientBoostingRegressor(n_trees=40, rng=0).fit(x, y)
        assert mse(y, gbm.predict(x)) < 0.5 * np.var(y)

    def test_single_tree_with_lr_one_equals_mean_plus_tree(self, friedman_like):
        x, y = friedman_like
        gbm = GradientBoostingRegressor(n_trees=1, learning_rate=1.0, rng=0).fit(x, y)
        from repro.ml import DecisionTreeRegressor

        tree = DecisionTreeRegressor(max_depth=3, rng=0).fit(x, y - y.mean())
        np.testing.assert_allclose(
            gbm.predict(x), y.mean() + tree.predict(x), atol=1e-9
        )

    def test_invalid_learning_rate(self):
        for lr in (0.0, 1.5, -0.1):
            with pytest.raises(ValueError):
                GradientBoostingRegressor(learning_rate=lr)
