"""Tests for CART trees."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.ml import DecisionTreeClassifier, DecisionTreeRegressor, NotFittedError


@pytest.fixture
def rng():
    return np.random.default_rng(11)


class TestDecisionTreeRegressor:
    def test_fits_step_function_exactly(self):
        x = np.arange(20.0)
        y = np.where(x < 10, 1.0, 5.0)
        tree = DecisionTreeRegressor(max_depth=2).fit(x, y)
        np.testing.assert_allclose(tree.predict(x), y)

    def test_single_leaf_on_constant_target(self):
        tree = DecisionTreeRegressor().fit(np.arange(10.0), np.full(10, 3.0))
        assert tree.n_leaves() == 1
        assert tree.predict(np.array([[99.0]]))[0] == pytest.approx(3.0)

    def test_respects_max_depth(self, rng):
        x = rng.normal(size=(200, 3))
        y = rng.normal(size=200)
        tree = DecisionTreeRegressor(max_depth=3).fit(x, y)
        assert tree.depth() <= 3

    def test_respects_min_samples_leaf(self, rng):
        x = rng.normal(size=(50, 2))
        y = rng.normal(size=50)
        tree = DecisionTreeRegressor(max_depth=10, min_samples_leaf=10).fit(x, y)

        def leaf_sizes(node):
            if node.is_leaf:
                return [node.n_samples]
            return leaf_sizes(node.left) + leaf_sizes(node.right)

        assert min(leaf_sizes(tree.root_)) >= 10

    def test_predictions_within_target_range(self, rng):
        x = rng.normal(size=(100, 2))
        y = rng.uniform(5, 10, size=100)
        tree = DecisionTreeRegressor(max_depth=4).fit(x, y)
        preds = tree.predict(rng.normal(size=(50, 2)))
        assert np.all(preds >= 5.0) and np.all(preds <= 10.0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            DecisionTreeRegressor().predict(np.ones((1, 1)))

    def test_feature_mismatch_raises(self, rng):
        tree = DecisionTreeRegressor().fit(rng.normal(size=(20, 2)), rng.normal(size=20))
        with pytest.raises(ValueError, match="features"):
            tree.predict(np.ones((2, 5)))

    def test_invalid_hyperparams(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_split=1)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_leaf=0)

    @settings(max_examples=20, deadline=None)
    @given(
        y=hnp.arrays(
            float,
            st.integers(5, 30),
            elements=st.floats(-1e6, 1e6, allow_nan=False),
        )
    )
    def test_property_leaf_means_bound_predictions(self, y):
        x = np.arange(float(y.size))
        tree = DecisionTreeRegressor(max_depth=4).fit(x, y)
        preds = tree.predict(x)
        assert preds.min() >= y.min() - 1e-9
        assert preds.max() <= y.max() + 1e-9


class TestDecisionTreeClassifier:
    def test_separable_classes(self, rng):
        x = np.concatenate([rng.normal(-2, 0.3, 50), rng.normal(2, 0.3, 50)])
        y = np.concatenate([np.zeros(50, int), np.ones(50, int)])
        tree = DecisionTreeClassifier(max_depth=2).fit(x, y)
        assert np.mean(tree.predict(x) == y) == 1.0

    def test_majority_vote_at_root(self):
        x = np.ones((10, 1))  # no split possible
        y = np.array([0] * 7 + [1] * 3)
        tree = DecisionTreeClassifier().fit(x, y)
        assert tree.predict(np.ones((1, 1)))[0] == 0

    def test_multiclass(self, rng):
        centers = [-4.0, 0.0, 4.0]
        x = np.concatenate([rng.normal(c, 0.2, 30) for c in centers])
        y = np.repeat([0, 1, 2], 30)
        tree = DecisionTreeClassifier(max_depth=3).fit(x, y)
        assert np.mean(tree.predict(x) == y) > 0.95

    def test_returns_int_dtype(self, rng):
        x = rng.normal(size=(20, 1))
        y = (x[:, 0] > 0).astype(int)
        tree = DecisionTreeClassifier().fit(x, y)
        assert tree.predict(x).dtype.kind == "i"
