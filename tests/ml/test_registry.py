"""Tests for the model registry (flighting, promotion, rollback)."""

import pytest

from repro.ml import ModelRegistry, ModelStage


@pytest.fixture
def registry():
    return ModelRegistry(rng=0)


class TestRegistration:
    def test_versions_increase(self, registry):
        v1 = registry.register("card", object())
        v2 = registry.register("card", object())
        assert v2 > v1
        assert registry.versions("card") == [v1, v2]

    def test_get_unknown_raises(self, registry):
        with pytest.raises(KeyError):
            registry.get("nope", 1)

    def test_metadata_stored(self, registry):
        v = registry.register("m", object(), metadata={"template": "t1"})
        assert registry.get("m", v).metadata["template"] == "t1"


class TestLifecycle:
    def test_promote_sets_production(self, registry):
        v = registry.register("m", "model-a")
        registry.promote("m", v)
        assert registry.production("m").version == v

    def test_promote_retires_previous(self, registry):
        v1 = registry.register("m", "a")
        v2 = registry.register("m", "b")
        registry.promote("m", v1)
        registry.promote("m", v2)
        assert registry.get("m", v1).stage is ModelStage.RETIRED
        assert registry.production("m").version == v2

    def test_rollback_restores_previous(self, registry):
        v1 = registry.register("m", "a")
        v2 = registry.register("m", "b")
        registry.promote("m", v1)
        registry.promote("m", v2)
        restored = registry.rollback("m")
        assert restored == v1
        assert registry.production("m").version == v1
        assert registry.get("m", v2).stage is ModelStage.RETIRED

    def test_double_rollback_walks_history(self, registry):
        versions = [registry.register("m", i) for i in range(3)]
        for v in versions:
            registry.promote("m", v)
        registry.rollback("m")
        assert registry.rollback("m") == versions[0]

    def test_rollback_without_history_raises(self, registry):
        v = registry.register("m", "a")
        registry.promote("m", v)
        with pytest.raises(RuntimeError, match="roll back"):
            registry.rollback("m")

    def test_flight_requires_production(self, registry):
        v = registry.register("m", "a")
        with pytest.raises(RuntimeError, match="no production"):
            registry.flight("m", v)

    def test_flight_fraction_validated(self, registry):
        v1 = registry.register("m", "a")
        registry.promote("m", v1)
        v2 = registry.register("m", "b")
        with pytest.raises(ValueError):
            registry.flight("m", v2, fraction=0.0)

    def test_audit_log_records_transitions(self, registry):
        v = registry.register("m", "a")
        registry.promote("m", v)
        actions = [entry[0] for entry in registry.audit_log]
        assert actions == ["register", "promote"]

    def test_rollback_with_no_prior_production_raises(self, registry):
        # A name that was only ever registered (never promoted) has an
        # empty promotion history, not a one-entry one.
        registry.register("m", "a")
        with pytest.raises(RuntimeError, match="roll back"):
            registry.rollback("m")

    def test_second_concurrent_flight_rejected(self, registry):
        v1 = registry.register("m", "prod")
        registry.promote("m", v1)
        v2 = registry.register("m", "cand-a")
        registry.flight("m", v2, fraction=0.2)
        v3 = registry.register("m", "cand-b")
        with pytest.raises(RuntimeError, match="already flighting"):
            registry.flight("m", v3, fraction=0.2)
        # The original flight is untouched by the rejected attempt.
        assert registry.flighting("m").version == v2
        assert registry.get("m", v3).stage is ModelStage.REGISTERED

    def test_reflighting_same_version_is_idempotent(self, registry):
        v1 = registry.register("m", "prod")
        registry.promote("m", v1)
        v2 = registry.register("m", "cand")
        registry.flight("m", v2, fraction=0.1)
        registry.flight("m", v2, fraction=0.3)  # adjust fraction, no error
        assert registry.flighting("m").version == v2


class TestServing:
    def test_serve_returns_production_without_flight(self, registry):
        v = registry.register("m", "a")
        registry.promote("m", v)
        assert registry.serve("m").version == v

    def test_serve_without_production_raises(self, registry):
        registry.register("m", "a")
        with pytest.raises(RuntimeError, match="no production"):
            registry.serve("m")

    def test_flight_gets_roughly_its_fraction(self, registry):
        v1 = registry.register("m", "prod")
        registry.promote("m", v1)
        v2 = registry.register("m", "cand")
        registry.flight("m", v2, fraction=0.3)
        served = [registry.serve("m").version for _ in range(2000)]
        candidate_share = served.count(v2) / len(served)
        assert 0.2 < candidate_share < 0.4

    def test_serve_during_flight_answers_only_with_the_two_parties(self, registry):
        # Retired versions must never answer during an active split.
        v1 = registry.register("m", "old")
        registry.promote("m", v1)
        v2 = registry.register("m", "prod")
        registry.promote("m", v2)  # v1 retired
        v3 = registry.register("m", "cand")
        registry.flight("m", v3, fraction=0.5)
        served = {registry.serve("m").version for _ in range(500)}
        assert served == {v2, v3}


class TestFlightEvaluation:
    def _setup_flight(self, registry):
        v1 = registry.register("m", "prod")
        registry.promote("m", v1)
        v2 = registry.register("m", "cand")
        registry.flight("m", v2, fraction=0.5)
        return v1, v2

    def test_insufficient_data_returns_none(self, registry):
        self._setup_flight(registry)
        assert registry.evaluate_flight("m") is None

    def test_better_candidate_promoted(self, registry):
        v1, v2 = self._setup_flight(registry)
        for _ in range(10):
            registry.record_metric("m", v1, 1.0)  # production error
            registry.record_metric("m", v2, 0.5)  # candidate error (lower=better)
        assert registry.evaluate_flight("m") is True
        assert registry.production("m").version == v2

    def test_worse_candidate_aborted(self, registry):
        v1, v2 = self._setup_flight(registry)
        for _ in range(10):
            registry.record_metric("m", v1, 0.5)
            registry.record_metric("m", v2, 1.0)
        assert registry.evaluate_flight("m") is False
        assert registry.production("m").version == v1
        assert registry.get("m", v2).stage is ModelStage.RETIRED

    def test_no_flight_raises(self, registry):
        v = registry.register("m", "a")
        registry.promote("m", v)
        with pytest.raises(RuntimeError, match="no active flight"):
            registry.evaluate_flight("m")
