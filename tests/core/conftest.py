"""Shared fixtures for core-service tests: one small workload world."""

import pytest

from repro.engine import (
    DefaultCardinalityEstimator,
    DefaultCostModel,
    Optimizer,
    TrueCardinalityModel,
)
from repro.workloads import ScopeWorkloadGenerator


@pytest.fixture(scope="session")
def world():
    """A deterministic 8-day SCOPE-like workload plus its models."""
    generator = ScopeWorkloadGenerator(rng=0)
    workload = generator.generate(n_days=8)
    truth = TrueCardinalityModel(workload.catalog, seed=5)
    default = DefaultCardinalityEstimator(workload.catalog)
    return {
        "workload": workload,
        "catalog": workload.catalog,
        "truth": truth,
        "default": default,
        "true_cost": DefaultCostModel(workload.catalog, truth),
        "est_cost": DefaultCostModel(workload.catalog, default),
        "optimizer": Optimizer(workload.catalog),
    }
