"""Columnar JobTable: batch ingest, chunk spill, and manifest pickles.

The repository rewrite must be invisible to existing callers — same
records, same statistics, same errors — while adding the memory-bounded
behaviours these tests pin: cold chunks spill and reload losslessly,
``job()`` after evict equals before, batch ingest matches per-job
ingest byte-for-byte, and pickles carry manifests instead of worlds.
"""

import dataclasses
import pickle

import numpy as np
import pytest

from repro.core.peregrine import JobBatch, WorkloadRepository, analyze
from repro.core.peregrine.repository import _hash_ids
from repro.workloads.scope import ScopeWorkloadConfig, ScopeWorkloadGenerator


@pytest.fixture(scope="module")
def workload():
    config = ScopeWorkloadConfig(n_recurring_templates=60)
    return ScopeWorkloadGenerator(rng=11, config=config).generate(n_days=4)


@pytest.fixture(scope="module")
def reference(workload):
    return WorkloadRepository().ingest(workload)


def _batched(workload, **repo_kwargs):
    repo = WorkloadRepository(**repo_kwargs)
    for day in range(4):
        repo.ingest_batch(JobBatch.from_jobs(list(workload.by_day(day))))
    return repo


class TestHashing:
    def test_hash_is_width_independent(self):
        ids = ["d000-t000", "a-much-longer-job-identifier-xyz", "x"]
        batch = _hash_ids(ids)
        for i, job_id in enumerate(ids):
            assert _hash_ids([job_id])[0] == batch[i]

    def test_distinct_ids_distinct_hashes(self):
        ids = [f"d{d:03d}-t{t:03d}" for d in range(50) for t in range(50)]
        assert len(np.unique(_hash_ids(ids))) == len(ids)


class TestBatchIngest:
    def test_batch_matches_per_job_analysis(self, workload, reference):
        batched = _batched(workload)
        assert dataclasses.asdict(analyze(batched)) == dataclasses.asdict(
            analyze(reference)
        )

    def test_batch_matches_per_job_records(self, workload, reference):
        batched = _batched(workload)
        assert len(batched) == len(reference)
        assert batched.days() == reference.days()
        for got, want in zip(batched.records, reference.records):
            assert got == want

    def test_job_lookup_after_batch(self, workload, reference):
        batched = _batched(workload)
        job_id = workload.by_day(2)[3].job_id
        assert batched.job(job_id) == reference.job(job_id)

    def test_duplicate_across_batches_rejected(self, workload):
        repo = _batched(workload)
        with pytest.raises(ValueError, match="already ingested"):
            repo.ingest_batch(JobBatch.from_jobs(list(workload.by_day(1))))

    def test_duplicate_within_batch_rejected(self, workload):
        jobs = list(workload.by_day(0))
        with pytest.raises(ValueError, match="already ingested"):
            WorkloadRepository().ingest_batch(jobs + [jobs[0]])

    def test_duplicate_against_per_job_ingest_rejected(self, workload):
        repo = WorkloadRepository()
        repo.ingest_job(workload.by_day(0)[0])
        with pytest.raises(ValueError, match="already ingested"):
            repo.ingest_batch(list(workload.by_day(0)))

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            JobBatch.from_jobs([])

    def test_mixed_day_batch_rejected(self, workload):
        jobs = [workload.by_day(0)[0], workload.by_day(1)[0]]
        with pytest.raises(ValueError, match="per-day"):
            JobBatch.from_jobs(jobs)


class TestSpill:
    def test_spill_reload_round_trip(self, workload, reference, tmp_path):
        repo = _batched(
            workload, memory_budget_bytes=1, spill_dir=tmp_path / "chunks"
        )
        stats = repo.chunk_stats()
        assert stats["spilled_chunks"] >= 3  # only the open day stays hot
        # job() after evict == before (and == the in-memory reference)
        for day in range(4):
            job_id = workload.by_day(day)[1].job_id
            assert repo.job(job_id) == reference.job(job_id)
        assert repo.chunk_stats()["loads"] >= 3

    def test_spilled_analysis_identical(self, workload, reference, tmp_path):
        repo = _batched(
            workload, memory_budget_bytes=1, spill_dir=tmp_path / "chunks"
        )
        assert dataclasses.asdict(analyze(repo)) == dataclasses.asdict(
            analyze(reference)
        )

    def test_budget_keeps_cold_chunks_out(self, workload, tmp_path):
        repo = _batched(
            workload, memory_budget_bytes=1, spill_dir=tmp_path / "chunks"
        )
        assert repo.chunk_stats()["hot_chunks"] == 1
        repo.by_day(0)  # pages day 0 back in, evicts another chunk
        assert repo.chunk_stats()["hot_chunks"] <= 2

    def test_no_spill_without_spill_dir(self, workload):
        repo = _batched(workload, memory_budget_bytes=1)
        assert repo.chunk_stats()["spilled_chunks"] == 0
        assert repo.chunk_stats()["hot_chunks"] == 4


class TestPickling:
    def test_inline_pickle_round_trip(self, workload, reference):
        clone = pickle.loads(pickle.dumps(reference))
        assert len(clone) == len(reference)
        for got, want in zip(clone.records, reference.records):
            assert got == want
        assert dataclasses.asdict(analyze(clone)) == dataclasses.asdict(
            analyze(reference)
        )

    def test_manifest_pickle_round_trip(self, workload, reference, tmp_path):
        repo = _batched(
            workload,
            memory_budget_bytes=50_000,
            spill_dir=tmp_path / "chunks",
        )
        blob = pickle.dumps(repo)
        # Manifest mode: the pickle references chunk files, it does not
        # embed every closed day.
        inline_blob = pickle.dumps(_batched(workload))
        assert len(blob) < len(inline_blob)
        clone = pickle.loads(blob)
        job_id = workload.by_day(1)[0].job_id
        assert clone.job(job_id) == reference.job(job_id)
        assert dataclasses.asdict(analyze(clone)) == dataclasses.asdict(
            analyze(reference)
        )


class TestRepositoryViews:
    def test_records_view_indexing(self, workload, reference):
        batched = _batched(workload)
        n = len(batched)
        assert batched.records[0] == reference.records[0]
        assert batched.records[n - 1] == reference.records[n - 1]
        assert batched.records[-1] == reference.records[n - 1]
        assert batched.records[5:8] == reference.records[5:8]
        with pytest.raises(IndexError):
            batched.records[n]

    def test_days_cached_and_invalidated(self, workload):
        repo = WorkloadRepository()
        for job in workload.by_day(0):
            repo.ingest_job(job)
        first = repo.days()
        assert repo.days() == [0]
        repo.ingest_job(workload.by_day(1)[0])
        assert repo.days() == [0, 1]
        assert first == [0]  # caller's copy untouched

    def test_by_day_returns_fresh_list(self, workload):
        repo = _batched(workload)
        got = repo.by_day(2)
        got.clear()
        assert len(repo.by_day(2)) == len(workload.by_day(2))

    def test_reopening_a_closed_day(self, workload, reference):
        repo = WorkloadRepository()
        day0 = list(workload.by_day(0))
        day1 = list(workload.by_day(1))
        repo.ingest_batch(day0[:10])
        repo.ingest_batch(day1)       # closes day 0
        repo.ingest_batch(day0[10:])  # reopens it
        for job in day0:
            assert repo.job(job.job_id) == reference.job(job.job_id)
        assert [r.job_id for r in repo.by_day(1)] == [
            j.job_id for j in day1
        ]
