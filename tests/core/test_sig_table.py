"""The memoized whole-history (job, signature) block.

``WorkloadRepository.sig_table`` is the append-only cache behind the
parallel analyze path's shared-memory table: per call it may only
gather days ingested since the last call, must recast cleanly when a
new day widens the signature byte width, must survive min_size
filtering down to empty days, and must never reload spilled chunks for
days it has already folded in.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.peregrine.analysis import analyze
from repro.core.peregrine.repository import JobBatch, WorkloadRepository
from repro.engine import Scan
from repro.workloads.scope import ScopeWorkloadConfig, ScopeWorkloadGenerator


def tiny_batch(
    day: int,
    sig_names: list[str],
    sig_sizes: list[int],
    n_jobs: int = 2,
) -> JobBatch:
    """A hand-built one-plan batch with a controlled signature pool."""
    return JobBatch(
        day=day,
        job_ids=[f"d{day}-j{k}" for k in range(n_jobs)],
        submit_hours=np.arange(n_jobs, dtype=np.float64),
        plan_codes=np.zeros(n_jobs, dtype=np.uint32),
        param_codes=np.zeros(n_jobs, dtype=np.uint32),
        plans=[Scan(f"t{day}")],
        plan_templates=[f"tmpl{day}"],
        plan_stricts=[f"strict{day}"],
        plan_sig_codes=[np.arange(len(sig_names), dtype=np.uint32)],
        sig_names=sig_names,
        sig_sizes=sig_sizes,
        params_pool=[{}],
        deps_map={},
    )


def fresh_table(repo_days, min_size):
    """Rebuild the block from scratch on a brand-new repository."""
    repo = WorkloadRepository()
    for batch in repo_days:
        repo.ingest_batch(batch)
    return repo.sig_table(min_size)


class TestSigTableMemoization:
    def test_incremental_equals_fresh_rebuild(self):
        generator = ScopeWorkloadGenerator(rng=3)
        repo = WorkloadRepository()
        batches = []
        for day in range(4):
            batch = generator.day_batch(day)
            batches.append(batch)
            repo.ingest_batch(batch)
            table, slices = repo.sig_table(2)
            ref_table, ref_slices = fresh_table(batches, 2)
            assert slices == ref_slices
            assert table.dtype == ref_table.dtype
            assert np.array_equal(table, ref_table)

    def test_second_call_is_cached_object(self):
        repo = WorkloadRepository()
        repo.ingest_batch(tiny_batch(0, ["aa", "bb"], [2, 3]))
        first, _ = repo.sig_table(2)
        second, _ = repo.sig_table(2)
        assert first is second

    def test_sig_width_growth_across_days(self):
        narrow = tiny_batch(0, ["ab"], [3])
        wide = tiny_batch(1, ["abcdefghijklmnop"], [3])
        repo = WorkloadRepository()
        repo.ingest_batch(narrow)
        table0, _ = repo.sig_table(2)
        assert table0.dtype["sig"].itemsize == 2
        repo.ingest_batch(wide)
        table1, slices1 = repo.sig_table(2)
        assert table1.dtype["sig"].itemsize == 16
        ref_table, ref_slices = fresh_table([narrow, wide], 2)
        assert slices1 == ref_slices
        assert np.array_equal(table1, ref_table)
        # the narrow day's names survived the recast unmangled
        assert table1["sig"][0] == b"ab"

    def test_min_size_filters_rows_but_not_days(self):
        batch = tiny_batch(0, ["s1", "s2", "s5"], [1, 2, 5], n_jobs=3)
        repo = WorkloadRepository()
        repo.ingest_batch(batch)
        table, slices = repo.sig_table(2)
        # sizes 2 and 5 survive, per each of the 3 jobs
        assert len(table) == 6
        assert set(table["sig"].tolist()) == {b"s2", b"s5"}
        assert slices == [(0, 0, 6, 3)]

    def test_empty_day_under_min_size(self):
        repo = WorkloadRepository()
        repo.ingest_batch(tiny_batch(0, ["aa"], [2]))
        table, slices = repo.sig_table(99)
        assert len(table) == 0
        assert slices == [(0, 0, 0, 2)]
        # a later day extends the empty block without disturbing slices
        repo.ingest_batch(tiny_batch(1, ["bb"], [99]))
        table, slices = repo.sig_table(99)
        assert len(table) == 2
        assert slices == [(0, 0, 0, 2), (1, 0, 2, 2)]
        ref_table, ref_slices = fresh_table(
            [tiny_batch(0, ["aa"], [2]), tiny_batch(1, ["bb"], [99])], 99
        )
        assert slices == ref_slices
        assert np.array_equal(table, ref_table)

    def test_same_day_reingest_invalidates(self):
        repo = WorkloadRepository()
        repo.ingest_batch(tiny_batch(0, ["aa"], [2]))
        repo.sig_table(2)
        more = tiny_batch(0, ["aa"], [2])
        more.job_ids = ["d0-extra0", "d0-extra1"]
        repo.ingest_batch(more)
        table, slices = repo.sig_table(2)
        assert slices == [(0, 0, 4, 4)]
        assert len(table) == 4

    def test_analyze_after_spill_never_reloads_cached_days(self, tmp_path):
        config = ScopeWorkloadConfig()
        generator = ScopeWorkloadGenerator(rng=5, config=config)
        repo = WorkloadRepository(
            memory_budget_bytes=1, spill_dir=str(tmp_path / "chunks")
        )
        for day in range(3):
            repo.ingest_batch(generator.day_batch(day))
        assert repo.chunk_stats()["spilled_chunks"] >= 1
        first = analyze(repo, workers=2)
        loads_after_first = repo.chunk_stats()["loads"]
        second = analyze(repo, workers=2)
        assert pickle.dumps(first) == pickle.dumps(second)
        # the memoized block answered without paging any chunk back in
        assert repo.chunk_stats()["loads"] == loads_after_first
        # a new day only ever gathers itself
        repo.ingest_batch(generator.day_batch(3))
        loads_before = repo.chunk_stats()["loads"]
        analyze(repo, workers=2)
        assert repo.chunk_stats()["loads"] <= loads_before + 1

    def test_workers_do_not_change_statistics(self):
        """workers=1 vs workers=2 stay byte-identical as days append."""
        generator = ScopeWorkloadGenerator(rng=3)
        repo = WorkloadRepository()
        for day in range(3):
            repo.ingest_batch(generator.day_batch(day))
            serial = analyze(repo, workers=1)
            parallel = analyze(repo, workers=2)
            assert pickle.dumps(serial) == pickle.dumps(parallel)

    def test_cache_not_pickled(self):
        repo = WorkloadRepository()
        repo.ingest_batch(tiny_batch(0, ["aa"], [2]))
        table, slices = repo.sig_table(2)
        clone = pickle.loads(pickle.dumps(repo))
        assert clone._sig_table_cache == {}
        clone_table, clone_slices = clone.sig_table(2)
        assert clone_slices == slices
        assert np.array_equal(clone_table, table)


class TestGlobalJobIndex:
    def test_cross_day_duplicate_detected_via_merged_index(self):
        repo = WorkloadRepository()
        repo.ingest_batch(tiny_batch(0, ["aa"], [2]))
        duplicate = tiny_batch(1, ["bb"], [2])
        duplicate.job_ids = ["d0-j0", "d1-j1"]
        with pytest.raises(ValueError, match="already ingested"):
            repo.ingest_batch(duplicate)

    def test_find_after_many_days_and_restore(self):
        repo = WorkloadRepository()
        for day in range(5):
            repo.ingest_batch(tiny_batch(day, ["aa"], [2]))
        assert repo.job("d3-j1").job_id == "d3-j1"
        clone = pickle.loads(pickle.dumps(repo))
        assert clone._table._global_index is None
        assert clone.job("d3-j1").job_id == "d3-j1"
        with pytest.raises(KeyError):
            clone.job("d9-j0")
