"""Tests for the Phoebe checkpoint optimizer."""

import numpy as np
import pytest

from repro.core.checkpoint import CheckpointOptimizer, StagePredictor
from repro.engine import ClusterExecutor, compile_stages

WAVES = dict(max_stage_seconds=2.0, max_stage_bytes=128e6)


@pytest.fixture(scope="module")
def graphs(world):
    """Estimate-sized stage graphs with true sizing attached, days 6-7."""
    out = []
    for job in world["workload"].jobs:
        if job.day < 6 or job.plan.size < 5:
            continue
        plan = world["optimizer"].optimize(job.plan).plan
        out.append(
            compile_stages(
                plan, world["est_cost"], truth=world["true_cost"], **WAVES
            )
        )
    return out


@pytest.fixture(scope="module")
def predictor(world):
    executor = ClusterExecutor(n_machines=16, rng=0)
    observations = []
    for job in world["workload"].jobs:
        if job.day >= 4:
            continue
        plan = world["optimizer"].optimize(job.plan).plan
        graph = compile_stages(
            plan, world["est_cost"], truth=world["true_cost"], **WAVES
        )
        report = executor.run(graph)
        for stage, run in zip(graph.stages, report.runs):
            observations.append((stage, run.duration, stage.true_bytes()))
    return StagePredictor().fit(observations)


class TestStagePredictor:
    def test_covers_all_operators(self, predictor):
        assert {"Scan", "Filter", "Join", "Aggregate", "Project"} <= (
            predictor.operators_covered
        )

    def test_learned_durations_beat_estimates(self, predictor, world, graphs):
        # Compare duration prediction error on fresh runs.
        executor = ClusterExecutor(n_machines=16, noise=0.0, rng=3)
        est_err, learned_err = [], []
        for graph in graphs[:10]:
            report = executor.run(graph)
            for stage, run in zip(graph.stages, report.runs):
                est_err.append(abs(stage.duration() - run.duration))
                learned_err.append(
                    abs(predictor.predict_duration(stage) - run.duration)
                )
        assert np.mean(learned_err) < np.mean(est_err)

    def test_fallback_for_unknown_operator(self, predictor, graphs):
        from dataclasses import replace

        stage = replace(graphs[0].stages[0], operator="Exotic")
        assert predictor.predict_duration(stage) == stage.duration()
        assert predictor.predict_bytes(stage) == stage.output_bytes

    def test_rejects_bad_observations(self):
        with pytest.raises(ValueError):
            StagePredictor().fit([])
        with pytest.raises(ValueError):
            StagePredictor(min_observations=1)


class TestCheckpointOptimizer:
    def test_never_checkpoints_sink(self, predictor, graphs):
        optimizer = CheckpointOptimizer(predictor=predictor)
        for graph in graphs[:8]:
            plan = optimizer.select(graph)
            assert graph.sink.stage_id not in plan.checkpoints

    def test_respects_byte_budget(self, predictor, graphs):
        optimizer = CheckpointOptimizer(
            predictor=predictor, budget_fraction=0.3
        )
        for graph in graphs[:8]:
            plan = optimizer.select(graph)
            budget = 0.3 * sum(
                optimizer._bytes(s) for s in graph.stages[:-1]
            )
            assert plan.checkpointed_bytes <= budget + 1e-6

    def test_predicted_restart_improves(self, predictor, graphs):
        optimizer = CheckpointOptimizer(predictor=predictor, budget_fraction=0.8)
        plan = optimizer.select(graphs[0])
        assert (
            plan.predicted_restart_seconds
            <= plan.predicted_baseline_restart_seconds
        )
        assert 0.0 <= plan.predicted_restart_saving <= 1.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            CheckpointOptimizer(failure_grid=0)
        with pytest.raises(ValueError):
            CheckpointOptimizer(budget_fraction=0.0)


class TestEndToEnd:
    """The paper's three claims, directionally, on held-out days."""

    @pytest.fixture(scope="class")
    def measured(self, predictor, graphs):
        optimizer = CheckpointOptimizer(predictor=predictor, budget_fraction=0.8)
        rng = np.random.default_rng(7)
        restart_none, restart_ck = [], []
        temp_none, temp_ck = [], []
        runtime_none, runtime_ck = [], []
        for graph in graphs:
            checkpoints = optimizer.select(graph).checkpoints
            base = ClusterExecutor(n_machines=16, rng=1).run(graph)
            with_ck = ClusterExecutor(n_machines=16, rng=1).run(
                graph, checkpoints=checkpoints
            )
            t = base.runtime * rng.uniform(0.3, 0.95)
            executor = ClusterExecutor(rng=1)
            restart_none.append(executor.restart_work_seconds(graph, base, t))
            restart_ck.append(executor.restart_work_seconds(graph, with_ck, t))
            temp_none.append(base.peak_temp_bytes)
            temp_ck.append(with_ck.peak_temp_bytes)
            runtime_none.append(base.runtime)
            runtime_ck.append(with_ck.runtime)
        return {
            "restart_saving": 1 - np.sum(restart_ck) / np.sum(restart_none),
            "temp_saving": 1 - np.sum(temp_ck) / np.sum(temp_none),
            "runtime_overhead": np.sum(runtime_ck) / np.sum(runtime_none) - 1,
        }

    def test_restart_substantially_faster(self, measured):
        assert measured["restart_saving"] > 0.35

    def test_hotspot_temp_substantially_freed(self, measured):
        assert measured["temp_saving"] > 0.5

    def test_runtime_impact_minimal(self, measured):
        assert measured["runtime_overhead"] < 0.10
