"""Tests for the Peregrine workload analysis platform."""

import numpy as np
import pytest

from repro.core.peregrine import (
    WorkloadFeedback,
    WorkloadRepository,
    analyze,
    forecast_daily_volume,
)
from repro.core.peregrine.analysis import shared_jobs_on_day
from repro.core.peregrine.feedback import parameter_vector
from repro.core.peregrine.forecast import forecast_template_parameter
from repro.engine import Filter, Predicate, Scan


@pytest.fixture(scope="module")
def repo(world):
    return WorkloadRepository().ingest(world["workload"])


class TestRepository:
    def test_ingests_every_job(self, repo, world):
        assert len(repo) == len(world["workload"])

    def test_duplicate_ingest_rejected(self, repo, world):
        with pytest.raises(ValueError, match="already"):
            repo.ingest_job(world["workload"].jobs[0])

    def test_job_lookup(self, repo, world):
        job = world["workload"].jobs[0]
        assert repo.job(job.job_id).job_id == job.job_id
        with pytest.raises(KeyError):
            repo.job("ghost")

    def test_recurring_jobs_grouped_into_one_template(self, repo, world):
        instances = world["workload"].by_template(0)
        record = repo.job(instances[0].job_id)
        grouped = repo.instances_of(record.template)
        assert {r.job_id for r in grouped} >= {j.job_id for j in instances}

    def test_days(self, repo):
        assert repo.days() == list(range(8))

    def test_dependency_graph_is_dag(self, repo):
        import networkx as nx

        graph = repo.dependency_graph()
        assert nx.is_directed_acyclic_graph(graph)
        assert graph.number_of_edges() > 0


class TestAnalysis:
    def test_reproduces_paper_statistics(self, repo):
        stats = analyze(repo)
        assert stats.recurring_job_fraction > 0.60
        assert 0.25 <= stats.shared_subexpression_fraction <= 0.60
        assert 0.60 <= stats.dependency_fraction <= 0.80

    def test_summary_rows_complete(self, repo):
        rows = dict(analyze(repo).summary_rows())
        assert set(rows) == {
            "jobs",
            "templates",
            "recurring_fraction",
            "shared_subexpr_fraction",
            "dependency_fraction",
        }

    def test_shared_jobs_exclude_trivial_scans(self, repo):
        sharing, shared_sigs = shared_jobs_on_day(repo, 1, min_size=2)
        for sig, jobs in shared_sigs.items():
            assert len(jobs) > 1

    def test_empty_repository_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            analyze(WorkloadRepository())

    def test_top_shared_signatures_sorted(self, repo):
        stats = analyze(repo)
        counts = [c for _, c in stats.top_shared_signatures]
        assert counts == sorted(counts, reverse=True)


class TestFeedback:
    def test_parameter_vector_postorder(self):
        plan = Filter(Scan("t"), (Predicate("a", "<=", 3.0), Predicate("b", ">", 7.0)))
        np.testing.assert_array_equal(parameter_vector(plan), [3.0, 7.0])

    def test_observe_job_records_all_nodes(self, repo, world):
        feedback = WorkloadFeedback()
        record = repo.records[0]
        added = feedback.observe_job(record, world["truth"])
        assert added == record.plan.size
        assert len(feedback) == added

    def test_training_matrix_shapes(self, repo, world):
        feedback = WorkloadFeedback()
        for r in repo.records[:80]:
            feedback.observe_job(r, world["truth"])
        template = feedback.templates()[0]
        data = feedback.training_matrix(template)
        assert data is not None
        features, target = data
        assert features.shape[0] == target.shape[0]

    def test_unknown_template_returns_none(self):
        assert WorkloadFeedback().training_matrix("nope") is None

    def test_negative_rows_rejected(self):
        with pytest.raises(ValueError):
            WorkloadFeedback().record(Scan("t"), -1.0)


class TestForecast:
    def test_daily_volume_positive(self, repo):
        forecast = forecast_daily_volume(repo, horizon_days=3)
        assert forecast.shape == (3,)
        assert np.all(forecast >= 0)

    def test_volume_close_to_observed(self, repo):
        observed = len(repo.by_day(7))
        forecast = forecast_daily_volume(repo)[0]
        assert abs(forecast - observed) < 0.3 * observed

    def test_template_parameter_extrapolates_drift(self, repo, world):
        instances = world["workload"].by_template(0)
        record = repo.job(instances[0].job_id)
        forecast = forecast_template_parameter(repo, record.template)
        last = instances[-1].params["filter_value"]
        assert forecast[0] > last  # values drift upward

    def test_unknown_parameter_raises(self, repo, world):
        record = repo.records[0]
        with pytest.raises(KeyError):
            forecast_template_parameter(repo, record.template, "bogus")

    def test_invalid_horizon(self, repo):
        with pytest.raises(ValueError):
            forecast_daily_volume(repo, horizon_days=0)

    def test_empty_repo_rejected(self):
        with pytest.raises(ValueError):
            forecast_daily_volume(WorkloadRepository())


class TestDayIndex:
    def test_by_day_matches_full_scan_in_ingestion_order(self, repo):
        for day in repo.days():
            indexed = [r.job_id for r in repo.by_day(day)]
            scanned = [r.job_id for r in repo.records if r.day == day]
            assert indexed == scanned

    def test_unknown_day_is_empty(self, repo):
        assert repo.by_day(99) == []

    def test_by_day_returns_a_copy(self, repo):
        first = repo.by_day(0)
        first.clear()
        assert repo.by_day(0)
