"""Tests for Moneyball and the Pareto tooling (Figure 2)."""

import numpy as np
import pytest

from repro.core.moneyball import (
    ForecastPausePolicy,
    PredictabilityClassifier,
    evaluate_policies,
    policy_tradeoff,
)
from repro.core.pareto import TradeoffPoint, frontier_shift, pareto_frontier
from repro.infra import ServerlessSimulator
from repro.workloads import UsagePopulationConfig, generate_population


@pytest.fixture(scope="module")
def population():
    return generate_population(
        UsagePopulationConfig(n_tenants=60, n_days=42), rng=0
    )


class TestPareto:
    def test_domination(self):
        a = TradeoffPoint(1.0, 1.0)
        b = TradeoffPoint(2.0, 2.0)
        assert a.dominates(b) and not b.dominates(a)
        assert not a.dominates(TradeoffPoint(1.0, 1.0))

    def test_frontier_excludes_dominated(self):
        points = [
            TradeoffPoint(1, 3, "a"),
            TradeoffPoint(2, 2, "b"),
            TradeoffPoint(3, 1, "c"),
            TradeoffPoint(3, 3, "dominated"),
        ]
        frontier = pareto_frontier(points)
        assert [p.label for p in frontier] == ["a", "b", "c"]

    def test_frontier_sorted_by_qos(self):
        points = [TradeoffPoint(3, 1), TradeoffPoint(1, 3), TradeoffPoint(2, 2)]
        qos = [p.qos_penalty for p in pareto_frontier(points)]
        assert qos == sorted(qos)

    def test_frontier_shift_positive_when_dominating(self):
        base = [TradeoffPoint(1, 4), TradeoffPoint(3, 2)]
        better = [TradeoffPoint(1, 2), TradeoffPoint(3, 1)]
        assert frontier_shift(base, better) > 0

    def test_frontier_shift_empty_rejected(self):
        with pytest.raises(ValueError):
            frontier_shift([], [TradeoffPoint(1, 1)])


class TestClassifier:
    def test_reproduces_77_percent(self, population):
        classifier = PredictabilityClassifier()
        fraction = classifier.predictable_fraction(population)
        assert fraction == pytest.approx(0.77, abs=0.06)

    def test_high_agreement_with_ground_truth(self, population):
        assert PredictabilityClassifier().accuracy(population) > 0.9

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            PredictabilityClassifier().predictable_fraction([])

    def test_short_history_scores_zero(self, population):
        from repro.workloads.usage import TenantTrace

        short = TenantTrace("x", np.ones(48), True)
        assert PredictabilityClassifier().score(short) == 0.0


class TestForecastPolicy:
    def test_pauses_on_forecast_idle(self):
        policy = ForecastPausePolicy(period=24, activity_threshold=0.5)
        history = np.zeros(30)
        assert policy.should_pause(30, history)

    def test_stays_up_without_history(self):
        policy = ForecastPausePolicy(period=24, activity_threshold=0.5)
        assert not policy.should_pause(0, np.array([]))

    def test_resumes_before_forecast_activity(self):
        policy = ForecastPausePolicy(period=24, activity_threshold=0.5)
        history = np.zeros(48)
        history[10] = 1.0  # active at hour 10 yesterday
        assert policy.should_resume(34, history)  # 34 - 24 = 10
        assert not policy.should_resume(40, history)


class TestPolicyComparison:
    @pytest.fixture(scope="class")
    def tradeoffs(self, population):
        simulator = ServerlessSimulator()
        results = evaluate_policies(population, simulator)
        return {
            name: policy_tradeoff(reports, name)
            for name, reports in results.items()
        }

    def test_always_on_has_zero_cold_starts(self, tradeoffs):
        assert tradeoffs["always_on"].qos_penalty == 0.0

    def test_moneyball_dominates_reactive(self, tradeoffs):
        ml = tradeoffs["moneyball"]
        assert ml.qos_penalty < tradeoffs["reactive_4"].qos_penalty
        assert ml.cost < tradeoffs["reactive_4"].cost

    def test_moneyball_much_cheaper_than_always_on(self, tradeoffs):
        assert tradeoffs["moneyball"].cost < 0.75 * tradeoffs["always_on"].cost

    def test_figure2_shape(self, tradeoffs):
        # The frontier must show the QoS/cost tension: ordering policies
        # by cost must (weakly) order them by QoS penalty the other way.
        frontier = pareto_frontier(list(tradeoffs.values()))
        costs = [p.cost for p in frontier]
        assert costs == sorted(costs, reverse=True)
