"""Tests for learned cardinality micromodels."""

import numpy as np
import pytest

from repro.core.cardinality import (
    CardinalityMicromodel,
    LearnedCardinalityModel,
    MicromodelTrainer,
)
from repro.core.peregrine import WorkloadFeedback, WorkloadRepository
from repro.ml import q_error


@pytest.fixture(scope="module")
def trained(world):
    """Train on days 0-5, keeping days 6-7 for evaluation."""
    repo = WorkloadRepository().ingest(world["workload"])
    feedback = WorkloadFeedback()
    representatives = {}
    for record in repo.records:
        if record.day < 6:
            feedback.observe_job(record, world["truth"])
        for sig, node in record.subexpression_templates.items():
            representatives.setdefault(sig, node)
        representatives.setdefault(record.template, record.plan)
    trainer = MicromodelTrainer(world["default"])
    report = trainer.train(feedback, representatives)
    model = LearnedCardinalityModel.from_report(world["default"], report)
    return repo, report, model


class TestMicromodel:
    def test_fits_smooth_function(self):
        rng = np.random.default_rng(0)
        params = np.linspace(10, 100, 30).reshape(-1, 1)
        rows = 1000 * np.sqrt(params[:, 0])
        model = CardinalityMicromodel.fit("t", params, rows)
        pred = model.predict(np.array([[50.0]]))[0]
        assert pred == pytest.approx(1000 * np.sqrt(50), rel=0.1)

    def test_predictions_at_least_one(self):
        params = np.linspace(1, 10, 10).reshape(-1, 1)
        rows = np.full(10, 1.0)
        model = CardinalityMicromodel.fit("t", params, rows)
        assert np.all(model.predict(params) >= 1.0)


class TestTrainer:
    def test_pruning_keeps_fewer_than_candidates(self, trained):
        _, report, _ = trained
        assert 0 < len(report.kept) < report.n_candidates

    def test_kept_models_beat_default_on_validation(self, trained):
        _, report, _ = trained
        for template, model in report.kept.items():
            if template in report.default_q_error:
                assert (
                    model.validation_q_error
                    <= 0.95 * report.default_q_error[template] + 1e-9
                )

    def test_dropped_have_reasons(self, trained):
        _, report, _ = trained
        assert all(isinstance(v, str) and v for v in report.dropped.values())

    def test_keep_all_ablation_keeps_more(self, world, trained):
        repo, report, _ = trained
        feedback = WorkloadFeedback()
        representatives = {}
        for record in repo.records:
            if record.day < 6:
                feedback.observe_job(record, world["truth"])
            for sig, node in record.subexpression_templates.items():
                representatives.setdefault(sig, node)
        keep_all = MicromodelTrainer(world["default"], keep_all=True).train(
            feedback, representatives
        )
        assert len(keep_all.kept) >= len(report.kept)

    def test_invalid_hyperparams(self, world):
        with pytest.raises(ValueError):
            MicromodelTrainer(world["default"], min_observations=2)
        with pytest.raises(ValueError):
            MicromodelTrainer(world["default"], improvement_factor=1.5)
        with pytest.raises(ValueError):
            MicromodelTrainer(world["default"], validation_fraction=1.0)


class TestLearnedModel:
    def test_improves_q_error_on_holdout(self, trained, world):
        repo, _, model = trained
        holdout = [r for r in repo.records if r.day >= 6]
        q_default, q_learned = [], []
        for record in holdout:
            actual = np.array([world["truth"].estimate(record.plan)])
            q_default.append(
                q_error(actual, np.array([world["default"].estimate(record.plan)]))[0]
            )
            q_learned.append(
                q_error(actual, np.array([model.estimate(record.plan)]))[0]
            )
        assert np.median(q_learned) < np.median(q_default)
        assert np.mean(q_learned) < np.mean(q_default)

    def test_falls_back_for_unknown_templates(self, trained, world):
        _, _, model = trained
        from repro.engine import Scan

        novel = Scan("t0")
        assert model.estimate(novel) == world["default"].estimate(novel)

    def test_coverage_tracked(self, trained):
        repo, _, model = trained
        before = model.hits + model.misses
        model.estimate(repo.records[0].plan)
        assert model.hits + model.misses == before + 1
        assert 0.0 <= model.coverage <= 1.0

    def test_plugs_into_optimizer(self, trained, world):
        # The externalization seam: the learned model must be accepted by
        # the optimizer as a drop-in cardinality model.
        from repro.engine import Optimizer

        _, _, model = trained
        optimizer = Optimizer(world["catalog"], cardinality=model)
        plan = world["workload"].jobs[0].plan
        result = optimizer.optimize(plan)
        assert result.estimated_rows > 0
