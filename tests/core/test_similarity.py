"""Tests for the plan similarity index."""

import numpy as np
import pytest

from repro.core.peregrine import SimilarityIndex, plan_embedding
from repro.engine import Aggregate, Filter, Join, Predicate, Project, Scan


def fragment(value, table="fact"):
    return Filter(Scan(table), (Predicate("a0", "<=", value),))


@pytest.fixture
def index():
    idx = SimilarityIndex(["fact", "dim", "other"])
    idx.add(Join(fragment(10.0), Scan("dim"), "key", "key"))
    idx.add(Aggregate(fragment(10.0), ("a0",)))
    idx.add(Project(Scan("other"), ("a0",)))
    return idx


class TestEmbedding:
    def test_embedding_is_interpretable_shape(self):
        plan = Join(fragment(1.0), Scan("dim"), "key", "key")
        vec = plan_embedding(plan, ["fact", "dim"])
        # 6 operator counts + 2 table flags + predicates + depth + size
        assert vec.shape == (11,)
        assert vec[0] == 2.0  # two scans
        assert vec[3] == 1.0  # one join

    def test_identical_plans_embed_identically(self):
        a = plan_embedding(fragment(5.0), ["fact"])
        b = plan_embedding(fragment(99.0), ["fact"])  # literal ignored
        np.testing.assert_array_equal(a, b)


class TestIndex:
    def test_exact_template_distance_zero(self, index):
        match = index.nearest(Join(fragment(77.0), Scan("dim"), "key", "key"))
        assert match is not None
        assert match.distance == 0.0

    def test_near_miss_finds_closest_structure(self, index):
        # A join template with one extra project: closest to the join.
        novel = Project(
            Join(fragment(5.0), Scan("dim"), "key", "key"), ("a0",)
        )
        match = index.nearest(novel)
        assert match is not None
        assert match.distance > 0.0
        assert "Join" in str(match.representative)

    def test_max_distance_cutoff(self, index):
        unrelated = Aggregate(
            Join(
                Join(Scan("other"), Scan("other"), "key", "key"),
                Scan("other"),
                "key",
                "key",
            ),
            (),
        )
        assert index.nearest(unrelated, max_distance=0.1) is None
        assert index.nearest(unrelated) is not None  # unbounded still answers

    def test_neighbours_sorted(self, index):
        novel = Aggregate(fragment(3.0), ("a1",))
        matches = index.neighbours(novel, k=3)
        distances = [m.distance for m in matches]
        assert distances == sorted(distances)
        assert len(matches) == 3

    def test_empty_index_returns_none(self):
        idx = SimilarityIndex(["fact"])
        assert idx.nearest(fragment(1.0)) is None
        assert idx.neighbours(fragment(1.0)) == []

    def test_duplicate_add_is_idempotent(self, index):
        before = len(index)
        index.add(Join(fragment(123.0), Scan("dim"), "key", "key"))
        assert len(index) == before

    def test_validation(self):
        with pytest.raises(ValueError):
            SimilarityIndex([])
        idx = SimilarityIndex(["fact"])
        idx.add(fragment(1.0))
        with pytest.raises(ValueError):
            idx.neighbours(fragment(1.0), k=0)

    def test_real_workload_adhoc_jobs_route_to_templates(self, world):
        workload = world["workload"]
        vocabulary = [t.name for t in workload.catalog.tables()]
        index = SimilarityIndex(vocabulary)
        for job in workload.jobs:
            if job.is_recurring and job.day < 4:
                index.add(job.plan)
        adhoc = [j for j in workload.jobs if not j.is_recurring][:20]
        matches = [index.nearest(j.plan) for j in adhoc]
        assert all(m is not None for m in matches)


class TestIncrementalMatrix:
    def test_matrix_grows_by_appending_rows(self, index):
        probe = Project(Scan("fact"), ("a0",))  # novel template: forces a build
        index.nearest(probe)
        assert index._matrix.shape[0] == 3
        before = index._matrix.copy()
        index.add(Filter(Scan("dim"), (Predicate("a1", "<", 1.0),)))
        index.nearest(probe)
        assert index._matrix.shape[0] == 4
        np.testing.assert_array_equal(index._matrix[:3], before)

    def test_incremental_build_equals_fresh_build(self):
        plans = [
            Join(fragment(10.0), Scan("dim"), "key", "key"),
            Aggregate(fragment(10.0), ("a0",)),
            Project(Scan("other"), ("a0",)),
            Filter(Scan("dim"), (Predicate("a0", ">", 2.0),)),
        ]
        probe = Project(Scan("fact"), ("a1",))
        fresh = SimilarityIndex(["fact", "dim", "other"])
        for plan in plans:
            fresh.add(plan)
        incremental = SimilarityIndex(["fact", "dim", "other"])
        for plan in plans[:2]:
            incremental.add(plan)
        incremental.nearest(probe)  # builds a 2-row matrix...
        for plan in plans[2:]:
            incremental.add(plan)   # ...which must grow, not rebuild wrong
        a, b = fresh.nearest(probe), incremental.nearest(probe)
        assert (a.template, a.distance) == (b.template, b.distance)
        np.testing.assert_array_equal(fresh._matrix, incremental._matrix)
        np.testing.assert_array_equal(fresh._scale, incremental._scale)
