"""Tests for the guarded rule-steering service."""

import numpy as np
import pytest

from repro.core.steering import SteeringService
from repro.core.steering.service import plan_features
from repro.engine import RuleConfig


@pytest.fixture(scope="module")
def service(world):
    true_cost = lambda plan: world["true_cost"].cost(plan).total  # noqa: E731
    return SteeringService(
        world["optimizer"],
        true_cost,
        exploration_rate=1.0,
        validation_trials=2,
        rng=0,
    )


@pytest.fixture(scope="module")
def report(service, world):
    # Three epochs over the 8-day stream ~ a month of recurring history,
    # enough for per-template validation to accumulate trials.
    jobs = [
        (j.job_id, j.plan) for j in world["workload"].jobs if j.is_recurring
    ]
    stream = jobs + [
        (f"{job_id}-e{epoch}", plan)
        for epoch in (2, 3)
        for job_id, plan in jobs
    ]
    return service.run(stream)


class TestPlanFeatures:
    def test_shape_and_bias(self, world):
        plan = world["workload"].jobs[0].plan
        features = plan_features(plan, 1000.0)
        assert features.shape[0] == 6
        assert features[0] == 1.0


class TestGuardrails:
    def test_no_regressions_beyond_tolerance(self, report):
        assert report.regression_fraction(tolerance=0.01) == 0.0

    def test_small_incremental_steps(self, report, service):
        assert report.max_steps_from_default() <= service.max_steps

    def test_improvement_non_negative(self, report):
        assert report.improvement >= 0.0

    def test_adoptions_happen(self, report):
        assert report.adoptions > 0

    def test_learning_improves_over_time(self, report):
        halves = np.array_split(
            [o.improvement for o in report.outcomes], 2
        )
        assert np.mean(halves[1]) >= np.mean(halves[0])

    def test_default_config_served_for_unknown_template(self, service):
        assert service.recommend("never-seen") == RuleConfig.all_on()


class TestValidation:
    def test_invalid_constructor_args(self, world):
        true_cost = lambda plan: 1.0  # noqa: E731
        with pytest.raises(ValueError):
            SteeringService(world["optimizer"], true_cost, exploration_rate=2.0)
        with pytest.raises(ValueError):
            SteeringService(world["optimizer"], true_cost, validation_trials=0)
        with pytest.raises(ValueError):
            SteeringService(world["optimizer"], true_cost, max_steps=0)

    def test_outcome_improvement_definition(self, report):
        outcome = report.outcomes[0]
        expected = (
            (outcome.default_cost - outcome.steered_cost) / outcome.default_cost
        )
        assert outcome.improvement == pytest.approx(expected)

    def test_blacklisted_arms_not_adopted(self, service):
        # Every adopted flip must have survived validation: by invariant,
        # no template's adopted arm may also be blacklisted.
        for state in service._states.values():
            assert not (set(state.adopted_arms) & state.blacklisted)
