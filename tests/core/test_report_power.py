"""Tests for the workload report and rack power capping."""

import pytest

from repro.core.kea import (
    DEFAULT_POWER_PROFILES,
    MachineBehaviorModels,
    RackPowerCapper,
    observe_power,
)
from repro.core.peregrine import WorkloadRepository, workload_report
from repro.telemetry import TelemetryStore
from repro.workloads import MachineFleetSimulator


class TestWorkloadReport:
    @pytest.fixture(scope="class")
    def report(self, world):
        repo = WorkloadRepository().ingest(world["workload"])
        return workload_report(repo)

    def test_contains_every_section(self, report):
        for heading in (
            "# Workload analysis report",
            "## Headline statistics",
            "## Top recurring templates",
            "## Subexpression sharing by day",
            "## Pipelines",
        ):
            assert heading in report

    def test_headline_metrics_present(self, report):
        assert "recurring_fraction" in report
        assert "dependency_fraction" in report

    def test_sharing_table_covers_all_days(self, report, world):
        for day in range(world["workload"].n_days):
            assert f"\n| {day} | " in report

    def test_pipeline_facts(self, report):
        assert "dependency components:" in report
        assert "longest producer chain:" in report

    def test_empty_repository_rejected(self):
        with pytest.raises(ValueError):
            workload_report(WorkloadRepository())


class TestRackPowerCapper:
    @pytest.fixture(scope="class")
    def capper(self):
        telemetry = observe_power(DEFAULT_POWER_PROFILES, rng=0)
        return RackPowerCapper().fit(telemetry)

    def test_power_models_recover_slopes(self, capper):
        for profile in DEFAULT_POWER_PROFILES:
            model = capper.power_models[profile.sku]
            assert model.slope == pytest.approx(profile.watts_per_cpu, rel=0.1)
            assert model.intercept == pytest.approx(profile.idle_watts, rel=0.15)

    def test_cpu_cap_respects_budget(self, capper):
        for profile in DEFAULT_POWER_PROFILES:
            cap = capper.cpu_cap_for_budget(profile.sku, 250.0)
            assert 0.0 <= cap <= 100.0
            # Running at the cap must sit at (or under) the budget.
            assert profile.draw(cap) <= 260.0

    def test_generous_budget_caps_at_100(self, capper):
        assert capper.cpu_cap_for_budget("gen6", 10_000.0) == 100.0

    def test_starvation_budget_caps_at_0(self, capper):
        assert capper.cpu_cap_for_budget("gen4", 1.0) == 0.0

    def test_rack_caps_fit_rack_budget(self, capper):
        rack = {"gen4": 10, "gen5": 10, "gen6": 10}
        limit = 9_000.0
        caps = capper.rack_caps(rack, limit)
        cpu_by_sku = {sku: entry["cpu_cap"] for sku, entry in caps.items()}
        assert capper.predicted_rack_draw(rack, cpu_by_sku) <= limit * 1.02

    def test_rack_caps_include_container_caps(self, capper):
        store = TelemetryStore()
        MachineFleetSimulator(n_machines_per_sku=6, rng=0).collect(store, 30)
        behaviour = MachineBehaviorModels().fit(store)
        caps = capper.rack_caps({"gen5": 8}, 3_000.0, behaviour=behaviour)
        assert caps["gen5"]["container_cap"] >= 1.0

    def test_weak_sku_gets_lower_cpu_cap(self, capper):
        rack = {"gen4": 1, "gen6": 1}
        caps = capper.rack_caps(rack, 500.0)
        assert caps["gen4"]["cpu_cap"] < caps["gen6"]["cpu_cap"]

    def test_validation(self, capper):
        with pytest.raises(ValueError):
            capper.rack_caps({}, 100.0)
        with pytest.raises(ValueError):
            capper.rack_caps({"gen4": 1}, 0.0)
        with pytest.raises(KeyError):
            capper.cpu_cap_for_budget("gen99", 100.0)
        with pytest.raises(ValueError):
            RackPowerCapper().fit({})
        with pytest.raises(ValueError):
            observe_power(DEFAULT_POWER_PROFILES, n_samples=2)
