"""Tests for Seagull backup scheduling and proactive pool provisioning."""

import numpy as np
import pytest

from repro.core.poolserver import ForecastPoolPolicy, compare_policies
from repro.core.seagull import (
    BackupScheduler,
    ForecastWindowPolicy,
    PreviousDayPolicy,
    evaluate_policy,
)
from repro.core.seagull.scheduler import PreviousWeekPolicy
from repro.workloads import (
    UsagePopulationConfig,
    generate_demand,
    generate_population,
)


@pytest.fixture(scope="module")
def servers():
    population = generate_population(
        UsagePopulationConfig(n_tenants=40, n_days=42), rng=0
    )
    return [t for t in population if t.is_predictable]


class TestBackupScheduler:
    def test_window_loads_wraps_midnight(self):
        scheduler = BackupScheduler(window_hours=3)
        day = np.zeros(24)
        day[23] = 5.0
        loads = scheduler.window_loads(day)
        assert loads[22] == 5.0  # hours 22,23,0
        assert loads[23] == 5.0  # hours 23,0,1
        assert loads[0] == 0.0

    def test_choice_fields_consistent(self, servers):
        scheduler = BackupScheduler()
        choice = scheduler.choose(servers[0], day=30, policy=PreviousDayPolicy())
        assert 0 <= choice.start_hour < 24
        assert choice.actual_load >= choice.optimal_load

    def test_day_zero_rejected(self, servers):
        with pytest.raises(ValueError, match="history"):
            BackupScheduler().choose(servers[0], 0, PreviousDayPolicy())

    def test_day_beyond_trace_rejected(self, servers):
        with pytest.raises(ValueError, match="too short"):
            BackupScheduler().choose(servers[0], 999, PreviousDayPolicy())

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            BackupScheduler(window_hours=0)


class TestPolicies:
    def test_forecast_beats_previous_day(self, servers):
        days = range(29, 41)
        heuristic = evaluate_policy(servers, PreviousDayPolicy(), days)
        ml = evaluate_policy(servers, ForecastWindowPolicy(), days)
        assert ml >= heuristic

    def test_accuracies_in_paper_range(self, servers):
        days = range(29, 41)
        heuristic = evaluate_policy(servers, PreviousDayPolicy(), days)
        ml = evaluate_policy(servers, ForecastWindowPolicy(), days)
        assert heuristic > 0.90   # paper: 96%
        assert ml > 0.97          # paper: 99%

    def test_previous_week_falls_back_early(self, servers):
        policy = PreviousWeekPolicy()
        short_history = servers[0].values[:48]
        forecast = policy.forecast_day(short_history)
        np.testing.assert_array_equal(forecast, short_history[-24:])

    def test_empty_evaluation_rejected(self, servers):
        with pytest.raises(ValueError):
            evaluate_policy([], PreviousDayPolicy(), range(1, 2))


class TestPoolProvisioning:
    @pytest.fixture(scope="class")
    def comparison(self):
        trace = generate_demand(n_days=21, rng=0)
        return compare_policies(trace)

    def test_forecast_policy_highest_hit_rate(self, comparison):
        hit_rates = {
            name: report.hit_rate for name, (report, _) in comparison.items()
        }
        assert hit_rates["forecast"] == max(hit_rates.values())
        assert hit_rates["forecast"] > 0.9

    def test_forecast_reduces_mean_latency(self, comparison):
        means = {
            name: report.mean_latency for name, (report, _) in comparison.items()
        }
        assert means["forecast"] < means["on_demand"] / 5

    def test_on_demand_has_no_idle_cost(self, comparison):
        report, point = comparison["on_demand"]
        assert report.warm_idle_hours == 0.0
        assert point.cost == 0.0

    def test_forecast_policy_uses_weekly_history(self):
        policy = ForecastPoolPolicy(buffer_sigma=0.0)
        counts = np.arange(200.0)
        hour = 170
        assert policy.target(hour, counts[:hour]) == hour - 168

    def test_forecast_cold_start_fallback(self):
        policy = ForecastPoolPolicy()
        assert policy.target(0, np.array([])) >= 0
