"""Tests for contained-subexpression reuse (the CloudViews extension)."""

import pytest

from repro.core.cloudviews import (
    find_contained_groups,
    rewrite_with_containment,
)
from repro.engine import Filter, Join, Predicate, Scan, signature


def bounded(value, table="fact", column="a0"):
    return Filter(Scan(table), (Predicate(column, "<=", value),))


@pytest.fixture
def jobs():
    """Three jobs with the same fragment template at drifting bounds."""
    return [
        ("j1", Join(bounded(100.0), Scan("dim"), "key", "key")),
        ("j2", Join(bounded(150.0), Scan("dim"), "key", "key")),
        ("j3", Join(bounded(120.0), Scan("dim"), "key", "key")),
    ]


class TestGrouping:
    def test_finds_drifting_bound_group(self, jobs):
        groups = find_contained_groups(jobs)
        fragment_groups = [g for g in groups if g.weakest.size == 2]
        assert fragment_groups
        group = fragment_groups[0]
        assert group.n_jobs == 3

    def test_weakest_instance_chosen(self, jobs):
        groups = find_contained_groups(jobs)
        group = next(g for g in groups if g.weakest.size == 2)
        assert group.weakest == bounded(150.0)

    def test_identical_instances_excluded(self):
        # Strictly identical subexpressions are syntactic candidates,
        # not containment wins.
        jobs = [("a", bounded(100.0)), ("b", bounded(100.0))]
        assert find_contained_groups(jobs) == []

    def test_multi_predicate_filters_excluded(self):
        plan = Filter(
            Scan("fact"),
            (Predicate("a0", "<=", 5.0), Predicate("a1", "<=", 2.0)),
        )
        assert find_contained_groups([("a", plan), ("b", plan)]) == []

    def test_lower_bounds_excluded(self):
        plan = Filter(Scan("fact"), (Predicate("a0", ">", 5.0),))
        looser = Filter(Scan("fact"), (Predicate("a0", ">", 3.0),))
        assert find_contained_groups([("a", plan), ("b", looser)]) == []

    def test_single_job_not_grouped(self):
        jobs = [("only", bounded(100.0)), ("only", bounded(150.0))]
        assert find_contained_groups(jobs, min_jobs=2) == []


class TestRewrite:
    def test_strict_instance_gets_compensating_filter(self, jobs):
        group = next(
            g for g in find_contained_groups(jobs) if g.weakest.size == 2
        )
        rewritten = rewrite_with_containment(jobs[0][1], group)
        compensating = [
            n
            for n in rewritten.walk()
            if isinstance(n, Filter)
            and isinstance(n.child, Scan)
            and n.child.table == group.view_table
        ]
        assert compensating
        assert compensating[0].predicates[0].value == 100.0

    def test_weakest_instance_becomes_bare_view_scan(self, jobs):
        group = next(
            g for g in find_contained_groups(jobs) if g.weakest.size == 2
        )
        rewritten = rewrite_with_containment(jobs[1][1], group)
        assert Scan(group.view_table) in set(rewritten.walk())
        assert group.weakest not in set(rewritten.walk())

    def test_uncontained_plan_unchanged(self, jobs):
        group = next(
            g for g in find_contained_groups(jobs) if g.weakest.size == 2
        )
        foreign = Join(bounded(999.0), Scan("dim"), "key", "key")
        # 999 exceeds the view bound of 150: not contained, untouched.
        assert rewrite_with_containment(foreign, group) == foreign

    def test_rewrite_covers_more_jobs_than_syntactic_matching(self, jobs):
        # The whole point: strict signatures all differ, yet one view
        # serves every job after compensation.
        strict = {signature(plan) for _, plan in jobs}
        assert len(strict) == 3
        group = next(
            g for g in find_contained_groups(jobs) if g.weakest.size == 2
        )
        rewritten = [rewrite_with_containment(p, group) for _, p in jobs]
        assert all(
            any(
                isinstance(n, Scan) and n.table == group.view_table
                for n in plan.walk()
            )
            for plan in rewritten
        )

    def test_real_workload_has_containment_opportunities(self, world):
        # Across days, recurring fragments drift: one weakest-bound view
        # contains multiple days' instances.
        jobs = [
            (j.job_id, j.plan)
            for j in world["workload"].jobs
            if j.day in (2, 3) and j.is_recurring
        ]
        groups = find_contained_groups(jobs)
        assert groups
        assert max(g.n_jobs for g in groups) >= 2
