"""Tests for autotune, granularity selection, and the feedback loop."""

import numpy as np
import pytest

from repro.core.autotune import ApplicationTuner, benchmark_suite
from repro.core.feedback import FeedbackLoop
from repro.core.granularity import GranularPredictor, heterogeneous_population
from repro.ml import LinearRegression, ModelRegistry


class TestSparkApplication:
    @pytest.fixture(scope="class")
    def app(self):
        return benchmark_suite(5, rng=0)[0]

    def test_runtime_u_shaped(self, app):
        runtimes = [app.runtime(e) for e in (1, app.optimal_executors(), 128)]
        assert runtimes[1] < runtimes[0]
        assert runtimes[1] < runtimes[2]

    def test_runtime_decreases_then_overhead_dominates(self, app):
        optimum = app.optimal_executors()
        assert 1 < optimum < 128

    def test_invalid_executors(self, app):
        with pytest.raises(ValueError):
            app.runtime(0)
        with pytest.raises(ValueError):
            app.runtime(999)

    def test_noise_is_multiplicative_and_small(self, app):
        rng = np.random.default_rng(0)
        noiseless = app.runtime(8)
        noisy = [app.runtime(8, rng) for _ in range(200)]
        assert np.mean(noisy) == pytest.approx(noiseless, rel=0.02)


class TestApplicationTuner:
    @pytest.fixture(scope="class")
    def suite(self):
        return benchmark_suite(60, rng=0)

    @pytest.fixture(scope="class")
    def tuner(self, suite):
        return ApplicationTuner(rng=0).fit_global(suite[:40])

    def test_warm_start_near_optimal(self, tuner, suite):
        regrets = []
        for app in suite[40:]:
            optimal = app.runtime(app.optimal_executors())
            start = tuner.warm_start(app)
            regrets.append(app.runtime(start) / optimal - 1)
        assert float(np.mean(regrets)) < 0.1

    def test_cold_start_much_worse(self, suite):
        cold = ApplicationTuner(rng=0)  # no global model
        regrets = []
        for app in suite[40:]:
            optimal = app.runtime(app.optimal_executors())
            regrets.append(app.runtime(cold.warm_start(app)) / optimal - 1)
        assert float(np.mean(regrets)) > 0.2

    def test_fine_tuning_reduces_regret(self, tuner, suite):
        app = suite[45]
        trace = tuner.tune(app, n_runs=15)
        curve = trace.regret_curve(app.runtime(app.optimal_executors()))
        assert curve[-1] <= curve[0] + 1e-9
        assert curve[-1] < 0.15

    def test_trace_records_every_run(self, tuner, suite):
        trace = tuner.tune(suite[41], n_runs=10)
        assert len(trace.runtimes) == 10
        assert len(trace.executors) == 10

    def test_invalid_params(self, suite):
        with pytest.raises(ValueError):
            ApplicationTuner(step_factor=1.0)
        with pytest.raises(ValueError):
            ApplicationTuner(rng=0).fit_global(suite[:3])
        with pytest.raises(ValueError):
            ApplicationTuner(rng=0).tune(suite[0], n_runs=1)


class TestGranularity:
    @pytest.fixture(scope="class")
    def fitted(self):
        entities = heterogeneous_population(
            n_entities=30, samples_per_entity=20, rng=0
        )
        predictor = GranularPredictor(rng=0).fit(entities)
        return predictor, entities

    def test_granularity_ordering(self, fitted):
        predictor, entities = fitted
        report = predictor.evaluate(entities)
        # With ample per-entity data: individual < segment << global.
        assert report.individual_mse < report.segment_mse
        assert report.segment_mse < 0.2 * report.global_mse

    def test_selector_close_to_best(self, fitted):
        predictor, entities = fitted
        report = predictor.evaluate(entities)
        best = min(report.global_mse, report.segment_mse, report.individual_mse)
        assert report.selected_mse <= 1.5 * best

    def test_segment_wins_with_scarce_data(self):
        entities = heterogeneous_population(
            n_entities=30, samples_per_entity=5, noise=1.0, rng=1
        )
        predictor = GranularPredictor(min_individual_samples=8, rng=1).fit(entities)
        report = predictor.evaluate(entities)
        # No entity qualifies for an individual model; segment must carry.
        assert report.selection_counts["individual"] == 0
        assert report.segment_mse < report.global_mse

    def test_predict_unknown_granularity_rejected(self, fitted):
        predictor, entities = fitted
        with pytest.raises(ValueError):
            predictor.predict(entities[0].entity_id, entities[0].x, "cosmic")

    def test_population_validation(self):
        with pytest.raises(ValueError):
            heterogeneous_population(n_entities=2, n_segments=3)


class TestFeedbackLoop:
    def _fresh_loop(self, **kwargs):
        registry = ModelRegistry(rng=0)
        rng = np.random.default_rng(0)
        x0 = rng.normal(size=(50, 1))
        y0 = 2 * x0[:, 0] + rng.normal(scale=0.1, size=50)
        version = registry.register("m", LinearRegression().fit(x0, y0))
        registry.promote("m", version)
        loop = FeedbackLoop(
            registry,
            "m",
            retrain=lambda x, y: LinearRegression().fit(x, y),
            **kwargs,
        )
        return registry, loop, rng

    def test_stable_stream_takes_no_action(self):
        registry, loop, rng = self._fresh_loop()
        for _ in range(300):
            x = rng.normal(size=1)
            loop.observe(x, 2 * x[0] + rng.normal(scale=0.1))
        assert loop.report().actions == []
        assert registry.production("m").version == 1

    def test_drift_triggers_retrain_and_promotion(self):
        registry, loop, rng = self._fresh_loop()
        for _ in range(100):
            x = rng.normal(size=1)
            loop.observe(x, 2 * x[0] + rng.normal(scale=0.1))
        for _ in range(500):
            x = rng.normal(size=1)
            loop.observe(x, -1 * x[0] + rng.normal(scale=0.1))
        actions = loop.report().actions
        assert "drift" in actions
        assert "promote" in actions
        final = registry.production("m").model
        assert final.coef_[0] == pytest.approx(-1.0, abs=0.1)

    def test_observe_returns_prediction(self):
        _, loop, rng = self._fresh_loop()
        x = np.array([1.0])
        assert loop.observe(x, 2.0) == pytest.approx(2.0, abs=0.3)

    def test_events_carry_steps(self):
        registry, loop, rng = self._fresh_loop()
        for _ in range(100):
            x = rng.normal(size=1)
            loop.observe(x, 5 * x[0])  # immediate drift vs slope-2 model
        if loop.events:
            steps = [e.step for e in loop.events]
            assert steps == sorted(steps)

    def test_invalid_window(self):
        registry = ModelRegistry()
        with pytest.raises(ValueError):
            FeedbackLoop(registry, "m", retrain=lambda x, y: None, window=2)
