"""Tests for the Direction 1/3/4 extensions: AlgorithmStore, joint
optimization, and RAI guardrails."""

import numpy as np
import pytest

from repro.core.algorithmstore import default_store
from repro.core.guardrails import (
    CostGuardrail,
    RegressionGuardrail,
    fairness_report,
)
from repro.core.joint import (
    ParameterGrid,
    joint_optimize,
    sequential_optimize,
)


class TestAlgorithmStore:
    @pytest.fixture(scope="class")
    def store(self):
        return default_store()

    def test_catalog_covers_common_use_cases(self, store):
        assert len(store) >= 12
        assert {"regression", "forecasting", "decision", "monitoring",
                "clustering"} <= set(store.categories())

    def test_search_finds_by_tag(self, store):
        results = store.search("steering bandit")
        assert results
        assert results[0].name == "linucb"

    def test_search_finds_by_description(self, store):
        results = store.search("seasonal")
        names = {e.name for e in results}
        assert "holt-winters" in names

    def test_search_ranking_prefers_name_matches(self, store):
        results = store.search("linucb")
        assert results[0].name == "linucb"

    def test_search_empty_query_rejected(self, store):
        with pytest.raises(ValueError):
            store.search("   ")

    def test_instantiate_with_overrides(self, store):
        forecaster = store.get("holt-winters").instantiate(period=24, alpha=0.5)
        assert forecaster.period == 24
        assert forecaster.alpha == 0.5

    def test_instantiate_rejects_unknown_parameters(self, store):
        with pytest.raises(TypeError, match="unknown parameters"):
            store.get("linear-regression").instantiate(bogus=1)

    def test_instantiated_algorithm_works(self, store):
        model = store.get("linear-regression").instantiate()
        x = np.arange(10.0)
        model.fit(x, 2 * x)
        assert model.coef_[0] == pytest.approx(2.0)

    def test_duplicate_registration_rejected(self, store):
        entry = store.get("linucb")
        with pytest.raises(ValueError, match="already"):
            store.register(entry)

    def test_describe_includes_docs(self, store):
        text = store.describe("page-hinkley")
        assert "monitoring" in text
        assert "example:" in text

    def test_unknown_algorithm_raises(self, store):
        with pytest.raises(KeyError):
            store.get("flux-capacitor")


class TestJointOptimization:
    @staticmethod
    def coupled_objective(config):
        """A non-separable bowl: optimum at (3, 4) with interaction."""
        a, b = config["a"], config["b"]
        return (a - 3) ** 2 + (b - 4) ** 2 + 0.8 * (a - 3) * (b - 4)

    @pytest.fixture
    def grid(self):
        return ParameterGrid(
            {"a": (0.0, 1.0, 2.0, 3.0, 4.0), "b": (0.0, 1.0, 2.0, 3.0, 4.0)}
        )

    def test_joint_at_least_as_good_as_sequential(self, grid):
        sequential = sequential_optimize(self.coupled_objective, grid)
        joint = joint_optimize(self.coupled_objective, grid)
        assert joint.objective <= sequential.objective + 1e-12

    def test_joint_reaches_grid_optimum(self, grid):
        joint = joint_optimize(self.coupled_objective, grid)
        assert joint.config == {"a": 3.0, "b": 4.0}

    def test_sequential_stuck_in_zigzag_valley(self):
        # A diagonal valley: one ordered pass lands part-way down it,
        # while coordinate descent keeps zig-zagging to a better point.
        def valley(config):
            a, b = config["a"], config["b"]
            return 0.1 * (a - b) ** 2 + (a + b - 8) ** 2

        values = tuple(float(v) for v in range(9))
        grid = ParameterGrid({"a": values, "b": values})
        sequential = sequential_optimize(valley, grid, order=["a", "b"])
        joint = joint_optimize(valley, grid)
        assert joint.objective < sequential.objective
        assert joint.rounds > 1

    def test_coordinate_descent_terminates_at_fixpoint(self, grid):
        joint = joint_optimize(self.coupled_objective, grid, max_rounds=10)
        assert joint.rounds < 10

    def test_objective_cache_avoids_reevaluation(self, grid):
        calls = {"n": 0}

        def counting(config):
            calls["n"] += 1
            return self.coupled_objective(config)

        result = joint_optimize(counting, grid)
        assert calls["n"] == result.evaluations
        # 5x5 grid: caching must keep us below exhaustive enumeration
        # times rounds.
        assert result.evaluations <= 25

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            ParameterGrid({})
        with pytest.raises(ValueError):
            ParameterGrid({"a": (1.0,)})
        grid = ParameterGrid({"a": (0.0, 1.0)})
        with pytest.raises(ValueError, match="order"):
            sequential_optimize(lambda c: 0.0, grid, order=["z"])


class TestJointScenario:
    def test_checkpoint_wave_objective_is_usable(self, world):
        from repro.core.joint import checkpoint_wave_objective

        objective = checkpoint_wave_objective(world, n_jobs=3)
        coarse = objective({"max_stage_seconds": 4.0, "budget_fraction": 0.2})
        fine = objective({"max_stage_seconds": 1.0, "budget_fraction": 0.8})
        assert np.isfinite(coarse) and np.isfinite(fine)
        assert coarse != fine  # the knobs actually matter

    def test_objective_deterministic(self, world):
        from repro.core.joint import checkpoint_wave_objective

        objective = checkpoint_wave_objective(world, n_jobs=2)
        config = {"max_stage_seconds": 2.0, "budget_fraction": 0.5}
        assert objective(config) == objective(config)


class TestCostGuardrail:
    def test_within_bound_approved(self):
        decision = CostGuardrail(1.5).review(120.0, 100.0)
        assert decision.approved

    def test_beyond_bound_vetoed_with_reason(self):
        decision = CostGuardrail(1.5).review(200.0, 100.0)
        assert not decision.approved
        assert "exceeds" in decision.reason

    def test_zero_baseline(self):
        assert CostGuardrail().review(0.0, 0.0).approved
        assert not CostGuardrail().review(10.0, 0.0).approved

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            CostGuardrail(0.5)

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            CostGuardrail().review(-1.0, 1.0)


class TestRegressionGuardrail:
    def test_small_regression_tolerated(self):
        guard = RegressionGuardrail(tolerance=0.05)
        assert guard.review(1.04, 1.0).approved

    def test_large_regression_vetoed(self):
        guard = RegressionGuardrail(tolerance=0.05)
        decision = guard.review(1.2, 1.0)
        assert not decision.approved
        assert "regresses" in decision.reason

    def test_audit_log_and_veto_fraction(self):
        guard = RegressionGuardrail(tolerance=0.0)
        guard.review(1.0, 1.0)
        guard.review(2.0, 1.0)
        assert len(guard.audit_log) == 2
        assert guard.veto_fraction == 0.5

    def test_invalid_tolerance(self):
        with pytest.raises(ValueError):
            RegressionGuardrail(tolerance=-0.1)


class TestFairness:
    def test_balanced_outcomes_are_fair(self):
        segments = ["small"] * 10 + ["big"] * 10
        outcomes = [1.0] * 10 + [1.1] * 10
        report = fairness_report(segments, outcomes, disparity_bound=0.25)
        assert report.is_fair

    def test_marginalized_segment_flagged(self):
        # Small customers pay double: both segments deviate from the
        # population mean, and both deviations are surfaced.
        segments = ["small"] * 10 + ["big"] * 10
        outcomes = [2.0] * 10 + [1.0] * 10
        report = fairness_report(segments, outcomes, disparity_bound=0.25)
        assert "small" in report.flagged_segments
        assert report.disparity("small") > 0.25
        assert not report.is_fair

    def test_majority_population_isolates_the_marginalized_segment(self):
        # With a dominant majority, only the mistreated minority deviates.
        segments = ["small"] * 10 + ["big"] * 90
        outcomes = [2.0] * 10 + [1.0] * 90
        report = fairness_report(segments, outcomes, disparity_bound=0.25)
        assert report.flagged_segments == ["small"]

    def test_tiny_segments_not_flagged(self):
        segments = ["small"] * 2 + ["big"] * 20
        outcomes = [5.0] * 2 + [1.0] * 20
        report = fairness_report(
            segments, outcomes, disparity_bound=0.25, min_segment_size=5
        )
        assert "small" not in report.flagged_segments
        assert "small" in report.segment_means

    def test_validation(self):
        with pytest.raises(ValueError):
            fairness_report(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            fairness_report([], [])
        with pytest.raises(ValueError):
            fairness_report(["a"], [1.0], disparity_bound=0.0)

    def test_doppler_recommendations_serve_segments_fairly(self):
        # End-to-end RAI check on a real service: per-segment overspend
        # ratio of Doppler recommendations vs ground-truth right-sizing.
        from repro.core.doppler import SkuRecommender
        from repro.workloads import generate_customers, ground_truth_sku

        recommender = SkuRecommender(rng=0).observe(generate_customers(400, rng=0))
        customers = generate_customers(200, rng=1)
        segments, overspend = [], []
        for customer in customers:
            truth_price = ground_truth_sku(customer).price
            recommended = recommender.recommend(customer).sku.price
            segments.append(customer.segment)
            overspend.append(recommended / truth_price)
        report = fairness_report(
            segments, overspend, "overspend_ratio", disparity_bound=0.35
        )
        assert report.is_fair, report.segment_means
