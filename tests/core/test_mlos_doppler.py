"""Tests for the MLOS tuner and Doppler SKU recommendation."""

import numpy as np
import pytest

from repro.core.doppler import SkuRecommender, recommendation_accuracy
from repro.core.mlos import (
    ConfigParameter,
    ConfigSpace,
    ModelGuidedTuner,
    RandomSearchTuner,
    redis_vm_benchmark,
)
from repro.workloads import AZURE_SKUS, generate_customers


class TestConfigSpace:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ConfigParameter("p", 1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            ConfigParameter("p", 0.0, 1.0, 2.0)

    def test_space_validation(self):
        with pytest.raises(ValueError):
            ConfigSpace(())
        p = ConfigParameter("p", 0, 1, 0)
        with pytest.raises(ValueError, match="duplicate"):
            ConfigSpace((p, p))

    def test_sample_within_bounds(self):
        space, _, _ = redis_vm_benchmark(rng=0)
        samples = space.sample(np.random.default_rng(0), 50)
        clipped = np.vstack([space.clip(s) for s in samples])
        np.testing.assert_allclose(samples, clipped)

    def test_as_dict(self):
        space, _, _ = redis_vm_benchmark(rng=0)
        named = space.as_dict(space.default())
        assert named["swappiness"] == 60.0


class TestTuners:
    @pytest.fixture(scope="class")
    def redis_bench(self):
        return redis_vm_benchmark(noise=0.5, rng=0)

    def test_both_tuners_beat_default(self, redis_bench):
        space, objective, _ = redis_bench
        default_score = np.mean([objective(space.default()) for _ in range(5)])
        random_result = RandomSearchTuner(space, rng=1).tune(objective, 50)
        model_result = ModelGuidedTuner(space, rng=1).tune(objective, 50)
        assert random_result.best_score > default_score + 20
        assert model_result.best_score > default_score + 20

    def test_model_guided_beats_random_at_budget(self, redis_bench):
        space, objective, _ = redis_bench
        random_result = RandomSearchTuner(space, rng=2).tune(objective, 60)
        model_result = ModelGuidedTuner(space, rng=2).tune(objective, 60)
        assert model_result.best_score >= random_result.best_score

    def test_model_guided_approaches_optimum(self, redis_bench):
        space, objective, optimum = redis_bench
        result = ModelGuidedTuner(space, rng=3).tune(objective, 70)
        assert result.best_score > optimum - 10

    def test_incumbent_curve_monotone(self, redis_bench):
        space, objective, _ = redis_bench
        result = RandomSearchTuner(space, rng=0).tune(objective, 30)
        curve = result.incumbent_curve()
        assert np.all(np.diff(curve) >= 0)
        assert result.n_evaluations == 30

    def test_budget_validation(self, redis_bench):
        space, objective, _ = redis_bench
        with pytest.raises(ValueError):
            RandomSearchTuner(space).tune(objective, 0)
        with pytest.raises(ValueError):
            ModelGuidedTuner(space, n_seed=10).tune(objective, 10)


class TestDoppler:
    @pytest.fixture(scope="class")
    def recommender(self):
        return SkuRecommender(rng=0).observe(generate_customers(400, rng=0))

    @pytest.fixture(scope="class")
    def test_customers(self):
        return generate_customers(200, rng=1)

    def test_accuracy_matches_paper(self, recommender, test_customers):
        accuracy = recommendation_accuracy(recommender, test_customers)
        assert accuracy > 0.9  # paper: >95% on production data

    def test_exact_accuracy_high(self, recommender, test_customers):
        exact = recommendation_accuracy(
            recommender, test_customers, within_one_tier=False
        )
        assert exact > 0.8

    def test_recommendation_is_explainable(self, recommender, test_customers):
        rec = recommender.recommend(test_customers[0])
        # The ranked price-performance curve covers all SKUs by price.
        prices = [sku.price for sku, _ in rec.ranked_options]
        assert prices == sorted(prices)
        assert len(rec.ranked_options) == len(AZURE_SKUS)

    def test_recommendation_covers_or_is_largest(self, recommender, test_customers):
        biggest = max(AZURE_SKUS, key=lambda s: s.price)
        for customer in test_customers[:30]:
            rec = recommender.recommend(customer)
            covering = [s for s, covers in rec.ranked_options if covers]
            if covering:
                assert rec.sku == covering[0]
            else:
                assert rec.sku == biggest

    def test_segments_align_with_latents(self, recommender):
        train = generate_customers(400, rng=0)
        # Majority latent segment per cluster should be dominant (>70%).
        from collections import Counter

        clusters: dict[int, Counter] = {}
        for customer in train:
            cluster = recommender.segment_of(customer)
            clusters.setdefault(cluster, Counter())[customer.segment] += 1
        for counts in clusters.values():
            total = sum(counts.values())
            assert counts.most_common(1)[0][1] / total > 0.7

    def test_unfitted_raises(self):
        fresh = SkuRecommender()
        with pytest.raises(RuntimeError):
            fresh.recommend(generate_customers(1, rng=0)[0])

    def test_accuracy_empty_rejected(self, recommender):
        with pytest.raises(ValueError):
            recommendation_accuracy(recommender, [])
