"""Tests for learned cost models and the meta ensemble."""

import numpy as np
import pytest

from repro.core.costmodel import CostObservation, LearnedCostModel, job_cost_features
from repro.engine import ClusterExecutor, compile_stages, template_signature


@pytest.fixture(scope="module")
def observations(world):
    executor = ClusterExecutor(n_machines=16, rng=0)
    out = []
    for job in world["workload"].jobs:
        plan = world["optimizer"].optimize(job.plan).plan
        graph = compile_stages(plan, world["est_cost"], truth=world["true_cost"])
        report = executor.run(graph)
        out.append(
            CostObservation(
                template=template_signature(plan),
                features=job_cost_features(plan, world["est_cost"]),
                actual_seconds=report.runtime,
            )
        )
    return out


@pytest.fixture(scope="module")
def model(observations):
    split = int(0.75 * len(observations))
    return LearnedCostModel(min_template_observations=5, rng=0).train(
        observations[:split]
    )


class TestFeatures:
    def test_feature_vector_shape_and_finite(self, world):
        plan = world["workload"].jobs[0].plan
        features = job_cost_features(plan, world["est_cost"])
        assert features.shape == (5,)
        assert np.all(np.isfinite(features))

    def test_invalid_observation(self):
        with pytest.raises(ValueError):
            CostObservation("t", np.ones(5), actual_seconds=0.0)


class TestLearnedCostModel:
    def test_micromodels_trained_for_recurring_templates(self, model):
        assert model.n_micromodels > 0

    def test_ensemble_beats_analytical(self, model, observations):
        split = int(0.75 * len(observations))
        metrics = model.evaluate(observations[split:])
        assert metrics["ensemble_mape"] < metrics["analytical_mape"]

    def test_ensemble_reasonably_accurate(self, model, observations):
        split = int(0.75 * len(observations))
        metrics = model.evaluate(observations[split:])
        assert metrics["ensemble_mape"] < 0.5

    def test_full_coverage_via_fallback(self, model):
        # Unknown template still gets a prediction (global fallback).
        pred = model.predict("never-seen", np.array([10.0, 5.0, 8.0, 4.0, 3.0]))
        assert pred > 0

    def test_predictions_positive(self, model, observations):
        for obs in observations[-20:]:
            assert model.predict(obs.template, obs.features) >= 0.1

    def test_predict_plan_convenience(self, model, world):
        plan = world["workload"].jobs[0].plan
        assert model.predict_plan(plan, world["est_cost"]) > 0

    def test_too_few_observations_rejected(self, observations):
        with pytest.raises(ValueError, match="at least 8"):
            LearnedCostModel().train(observations[:5])

    def test_invalid_min_observations(self):
        with pytest.raises(ValueError):
            LearnedCostModel(min_template_observations=1)

    def test_covers(self, model, observations):
        covered = [o.template for o in observations if model.covers(o.template)]
        assert covered
