"""Tests for the pipeline optimizer (Pipemizer)."""

import pytest

from repro.core.pipeline import PipelineOptimizer, PipelineStats


@pytest.fixture(scope="module")
def optimizer(world):
    return PipelineOptimizer(world["workload"], world["truth"])


class TestStructure:
    def test_pipelines_found(self, optimizer):
        pipelines = optimizer.pipelines_on_day(2)
        assert pipelines
        for producer_id, consumers in pipelines.items():
            for consumer in consumers:
                assert producer_id in consumer.depends_on

    def test_output_table_detection(self, optimizer):
        pipelines = optimizer.pipelines_on_day(2)
        some_consumer = next(iter(pipelines.values()))[0]
        table = optimizer.output_table_of(some_consumer)
        assert table is None or table.startswith("out_t")


class TestStats:
    def test_collect_stats_covers_producers(self, optimizer):
        stats = optimizer.collect_stats(2)
        assert stats.observed_rows
        assert all(v >= 0 for v in stats.observed_rows.values())

    def test_patch_catalog_updates_rows(self, optimizer, world):
        stats = PipelineStats()
        table = next(
            t.name for t in world["catalog"].tables() if t.name.startswith("out_t")
        )
        stats.record(table, 12345.0)
        patched = stats.patch_catalog(world["catalog"])
        assert patched.get(table).n_rows == 12345
        # other tables untouched
        assert patched.get("t0").n_rows == world["catalog"].get("t0").n_rows

    def test_negative_rows_rejected(self):
        with pytest.raises(ValueError):
            PipelineStats().record("t", -1.0)

    def test_pipeline_aware_stats_reduce_q_error(self, optimizer):
        report = optimizer.optimize_day(2)
        assert report.pipeline_aware_q_error < report.stale_scan_q_error
        assert report.pipeline_aware_q_error < 1.5


class TestPushdown:
    def test_common_pushdown_finds_weakest_bound(self, optimizer, world):
        pipelines = optimizer.pipelines_on_day(2)
        found_any = False
        for producer_id, consumers in pipelines.items():
            producer = world["workload"].job(producer_id)
            table = f"out_t{producer.template_id}"
            predicate = optimizer.common_pushdown(table, consumers)
            if predicate is None:
                continue
            found_any = True
            assert predicate.op == "<="
            # Weakest: no consumer's own bound on that column exceeds it.
            for consumer in consumers:
                for node in consumer.plan.walk():
                    from repro.engine import Filter

                    if isinstance(node, Filter) and table in node.tables():
                        for p in node.predicates:
                            if p.column == predicate.column and p.op == "<=":
                                assert p.value <= predicate.value + 1e-9
        assert found_any

    def test_pushdown_none_for_no_consumers(self, optimizer):
        assert optimizer.common_pushdown("out_t0", []) is None

    def test_pushdown_none_for_unknown_table(self, optimizer, world):
        consumers = world["workload"].by_day(2)[:2]
        assert optimizer.common_pushdown("ghost", consumers) is None


class TestOptimizeDay:
    def test_cost_never_increases(self, optimizer):
        for day in (1, 2, 3):
            report = optimizer.optimize_day(day)
            assert report.optimized_cost <= report.baseline_cost * 1.0001

    def test_report_counts(self, optimizer):
        report = optimizer.optimize_day(2)
        assert report.n_pipelines > 0
        assert 0 <= report.n_pushdowns <= report.n_pipelines
