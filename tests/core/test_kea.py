"""Tests for KEA machine-behaviour models and balancing."""

import numpy as np
import pytest

from repro.core.kea import BehaviorModel, MachineBehaviorModels, WorkloadBalancer
from repro.infra import SkuFleetConfig
from repro.telemetry import TelemetryStore
from repro.workloads import MachineFleetSimulator
from repro.workloads.machines import DEFAULT_SKUS


@pytest.fixture(scope="module")
def models():
    store = TelemetryStore()
    MachineFleetSimulator(n_machines_per_sku=8, noise=2.0, rng=0).collect(
        store, n_steps=40
    )
    return MachineBehaviorModels().fit(store)


class TestBehaviorModel:
    def test_fit_recovers_line(self):
        x = np.arange(20.0)
        y = 3.0 * x + 5.0
        model = BehaviorModel.fit(x, y, "x", "y")
        assert model.slope == pytest.approx(3.0)
        assert model.intercept == pytest.approx(5.0)
        assert model.r2 == pytest.approx(1.0)

    def test_rejects_tiny_samples(self):
        with pytest.raises(ValueError):
            BehaviorModel.fit(np.ones(2), np.ones(2), "x", "y")

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            BehaviorModel.fit(np.ones(5), np.ones(4), "x", "y")


class TestMachineBehaviorModels:
    def test_one_model_per_sku(self, models):
        assert models.skus() == [s.name for s in DEFAULT_SKUS]

    def test_recovers_ground_truth_slopes(self, models):
        for sku in DEFAULT_SKUS:
            fitted = models.cpu_models[sku.name]
            assert fitted.slope == pytest.approx(sku.cpu_per_container, rel=0.1)
            assert fitted.r2 > 0.9

    def test_task_models_recover_slopes(self, models):
        for sku in DEFAULT_SKUS:
            fitted = models.task_models[sku.name]
            assert fitted.slope == pytest.approx(
                sku.task_seconds_per_cpu, rel=0.25
            )

    def test_predict_cpu_clipped(self, models):
        assert models.predict_cpu("gen4", 10_000) == 100.0
        assert models.predict_cpu("gen4", 0) >= 0.0

    def test_inversion_roundtrip(self, models):
        containers = models.containers_for_cpu("gen5", 60.0)
        assert models.predict_cpu("gen5", containers) == pytest.approx(60.0, abs=1.0)

    def test_unknown_sku_raises(self, models):
        with pytest.raises(KeyError):
            models.predict_cpu("gen99", 5)

    def test_empty_store_rejected(self):
        with pytest.raises(ValueError):
            MachineBehaviorModels().fit(TelemetryStore())


class TestBalancer:
    def test_caps_scale_with_sku_capability(self, models):
        result = WorkloadBalancer(models).recommend_caps(target_cpu=75)
        # Stronger generations (smaller cpu-per-container) get bigger caps.
        assert result.caps["gen6"] > result.caps["gen5"] > result.caps["gen4"]

    def test_predicted_cpu_near_target(self, models):
        result = WorkloadBalancer(models).recommend_caps(target_cpu=75)
        for cpu in result.predicted_cpu.values():
            assert cpu == pytest.approx(75.0, abs=5.0)

    def test_invalid_target(self, models):
        with pytest.raises(ValueError):
            WorkloadBalancer(models).recommend_caps(target_cpu=0.0)

    def test_balanced_fleet_reduces_imbalance_and_overload(self, models):
        balancer = WorkloadBalancer(models)
        result = balancer.recommend_caps(target_cpu=75)
        skus = {s.name: s for s in DEFAULT_SKUS}
        tuned = balancer.build_fleet(skus, 8, result)
        static = [SkuFleetConfig(s, 8, 28) for s in DEFAULT_SKUS]
        demands = list(np.random.default_rng(1).integers(400, 650, 15))
        static_metrics = WorkloadBalancer.evaluate(static, demands)
        tuned_metrics = WorkloadBalancer.evaluate(tuned, demands)
        assert tuned_metrics["mean_imbalance"] < 0.5 * static_metrics["mean_imbalance"]
        assert tuned_metrics["overload_fraction"] <= static_metrics["overload_fraction"]
