"""Tests for CloudViews computation reuse."""

import pytest

from repro.core.cloudviews import CloudViews
from repro.engine import Scan


@pytest.fixture(scope="module")
def cloudviews(world):
    return CloudViews(world["catalog"], world["est_cost"])


@pytest.fixture(scope="module")
def day_jobs(world):
    return [(j.job_id, j.plan) for j in world["workload"].by_day(2)]


class TestCandidates:
    def test_candidates_shared_and_nontrivial(self, cloudviews, day_jobs):
        for candidate in cloudviews.candidates(day_jobs):
            assert candidate.occurrences >= 2
            assert candidate.expression.size >= 2
            assert candidate.utility > 0

    def test_occurrences_count_distinct_jobs(self, cloudviews, day_jobs):
        for candidate in cloudviews.candidates(day_jobs):
            assert candidate.occurrences == len(set(candidate.job_ids))


class TestSelection:
    def test_selection_respects_budget(self, world, day_jobs):
        tight = CloudViews(
            world["catalog"], world["est_cost"], budget_bytes=1e9
        )
        selected = tight.select(day_jobs)
        assert sum(c.estimated_bytes for c in selected) <= 1e9

    def test_selection_drops_nested_candidates(self, cloudviews, day_jobs):
        selected = cloudviews.select(day_jobs)
        for i, outer in enumerate(selected):
            for inner in selected[i + 1 :]:
                assert not cloudviews._contains(
                    outer.expression, inner.expression
                )

    def test_max_views_cap(self, world, day_jobs):
        capped = CloudViews(world["catalog"], world["est_cost"], max_views=1)
        assert len(capped.select(day_jobs)) <= 1

    def test_invalid_params(self, world):
        with pytest.raises(ValueError):
            CloudViews(world["catalog"], world["est_cost"], min_occurrences=1)
        with pytest.raises(ValueError):
            CloudViews(world["catalog"], world["est_cost"], min_size=1)
        with pytest.raises(ValueError):
            CloudViews(world["catalog"], world["est_cost"], max_views=0)


class TestRewrite:
    def test_rewrite_replaces_matched_subtrees(self, cloudviews, day_jobs):
        selected = cloudviews.select(day_jobs)
        assert selected
        candidate = selected[0]
        job_with_view = next(
            plan
            for job_id, plan in day_jobs
            if cloudviews._contains(plan, candidate.expression)
        )
        rewritten = cloudviews.rewrite(job_with_view, [candidate])
        assert Scan(candidate.view_table) in set(rewritten.walk())
        assert candidate.expression not in set(rewritten.walk())

    def test_rewrite_noop_without_matches(self, cloudviews, day_jobs):
        plan = Scan("t0")
        assert cloudviews.rewrite(plan, cloudviews.select(day_jobs)) == plan


class TestRunDay:
    def test_reuse_improves_latency_and_processing(self, cloudviews, day_jobs, world):
        report = cloudviews.run_day(day_jobs, world["truth"])
        assert report.n_views > 0
        assert report.latency_improvement > 0.0
        assert report.processing_reduction > 0.0

    def test_semantics_preserved_under_rewrite(self, cloudviews, day_jobs, world):
        # The view-aware truth must see identical cardinalities through
        # the rewrite (views return exactly their defining expression).
        from repro.core.cloudviews.reuse import _ViewAwareTruth

        selected = cloudviews.select(day_jobs)
        definitions = {c.view_table: c.expression for c in selected}
        aware = _ViewAwareTruth(world["truth"], definitions)
        for job_id, plan in day_jobs[:10]:
            rewritten = cloudviews.rewrite(plan, selected)
            assert aware.estimate(rewritten) == pytest.approx(
                world["truth"].estimate(plan)
            )

    def test_report_fields_consistent(self, cloudviews, day_jobs, world):
        report = cloudviews.run_day(day_jobs, world["truth"])
        assert report.n_jobs == len(day_jobs)
        assert report.reuse_latency <= report.baseline_latency
