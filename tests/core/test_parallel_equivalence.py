"""Serial/parallel equivalence: ``workers`` is a throughput knob only.

The substrate's core contract is that fanning an analysis across a
process pool changes nothing about its output — not an ordering, not a
float.  These tests force real pools under pytest (``REPRO_PARALLEL_FORCE``)
and compare against the serial twin field by field, and separately pin
the shard merge's independence from the shard count.
"""

import numpy as np
import pytest

from repro.core.cloudviews import CloudViews
from repro.core.cloudviews.reuse import (
    _enumerate_candidate_shard,
    _merge_candidate_shards,
)
from repro.core.peregrine import SimilarityIndex, WorkloadRepository, analyze
from repro.engine.signatures import signatures
from repro.parallel import FORCE_ENV, shard_items


def _report_key(report):
    return (
        report.n_jobs,
        report.n_views,
        report.baseline_latency,
        report.reuse_latency,
        report.baseline_processing,
        report.reuse_processing,
        tuple(
            (v.signature, tuple(v.job_ids), v.estimated_cost, v.estimated_bytes)
            for v in report.views
        ),
    )


def _candidate_key(candidates):
    return [
        (c.signature, tuple(c.job_ids), c.estimated_cost, c.estimated_bytes)
        for c in candidates
    ]


@pytest.fixture(scope="module")
def jobs(world):
    return [(job.job_id, job.plan) for job in world["workload"].jobs]


@pytest.fixture
def force_pools(monkeypatch):
    monkeypatch.setenv(FORCE_ENV, "1")


class TestCloudViewsEquivalence:
    def test_candidates_identical_across_worker_counts(
        self, world, jobs, force_pools
    ):
        service = CloudViews(world["catalog"], world["est_cost"])
        serial = service.candidates(jobs, workers=1)
        for workers in (2, 4):
            pooled = service.candidates(jobs, workers=workers)
            assert _candidate_key(pooled) == _candidate_key(serial)
            assert [c.expression for c in pooled] == [
                c.expression for c in serial
            ]

    def test_run_day_identical_serial_vs_pool(self, world, jobs, force_pools):
        serial = CloudViews(world["catalog"], world["est_cost"]).run_day(
            jobs, world["truth"], workers=1
        )
        pooled = CloudViews(world["catalog"], world["est_cost"]).run_day(
            jobs, world["truth"], workers=4
        )
        assert _report_key(pooled) == _report_key(serial)

    def test_candidate_merge_is_shard_count_independent(self, world, jobs):
        service = CloudViews(world["catalog"], world["est_cost"])
        entries = [
            (index, job_id, plan)
            for index, (job_id, plan) in enumerate(jobs)
        ]
        reference = _merge_candidate_shards(
            [_enumerate_candidate_shard((entries, service.min_size))]
        )
        assert reference  # sanity: the merge has rows to compare
        for n_shards in (1, 3, 16, 64):
            shards = shard_items(
                entries,
                key=lambda entry: signatures(entry[2]).template,
                n_shards=n_shards,
            )
            partials = [
                _enumerate_candidate_shard((shard, service.min_size))
                for shard in shards
            ]
            merged = _merge_candidate_shards(partials)
            # Merged rows are (signature, expression, job_ids) in global
            # first-sighting order; every component must be identical.
            assert merged == reference


class TestPeregrineEquivalence:
    def test_analyze_identical_serial_vs_pool(self, world, force_pools):
        repo = WorkloadRepository().ingest(world["workload"])
        serial = analyze(repo, workers=1)
        pooled = analyze(repo, workers=4)
        assert pooled == serial


class TestSimilarityEquivalence:
    def test_bulk_add_identical_serial_vs_pool(self, world, force_pools):
        plans = [job.plan for job in world["workload"].jobs[:60]]
        vocabulary = [t.name for t in world["catalog"].tables()]
        serial_index = SimilarityIndex(vocabulary)
        serial_templates = serial_index.bulk_add(plans, workers=1)
        pooled_index = SimilarityIndex(vocabulary)
        pooled_templates = pooled_index.bulk_add(plans, workers=4)
        assert pooled_templates == serial_templates
        assert pooled_index._templates == serial_index._templates
        np.testing.assert_array_equal(
            np.vstack(pooled_index._embeddings),
            np.vstack(serial_index._embeddings),
        )

    def test_bulk_add_matches_sequential_adds(self, world):
        plans = [job.plan for job in world["workload"].jobs[:60]]
        vocabulary = [t.name for t in world["catalog"].tables()]
        bulk_index = SimilarityIndex(vocabulary)
        bulk_templates = bulk_index.bulk_add(plans)
        loop_index = SimilarityIndex(vocabulary)
        loop_templates = [loop_index.add(plan) for plan in plans]
        assert bulk_templates == loop_templates
        assert bulk_index._templates == loop_index._templates
        np.testing.assert_array_equal(
            np.vstack(bulk_index._embeddings),
            np.vstack(loop_index._embeddings),
        )
