"""Tests for the telemetry store, schema, and query layer."""

import numpy as np
import pytest

from repro.telemetry import (
    Metric,
    MetricAliasRegistry,
    Query,
    TelemetryStore,
)


@pytest.fixture
def store():
    return TelemetryStore()


class TestAliases:
    def test_windows_and_linux_names_resolve_identically(self):
        reg = MetricAliasRegistry.standard()
        windows = reg.resolve(r"\Processor(_Total)\% Processor Time")
        linux = reg.resolve("cpu.percent")
        assert windows is linux is Metric.CPU_UTILIZATION

    def test_semantic_name_resolves_to_itself(self):
        reg = MetricAliasRegistry.standard()
        assert reg.resolve("cpu.utilization") is Metric.CPU_UTILIZATION

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            MetricAliasRegistry.standard().resolve("bogus.metric")

    def test_add_alias(self):
        reg = MetricAliasRegistry.standard()
        reg.add_alias("my.cpu", Metric.CPU_UTILIZATION)
        assert reg.resolve("my.cpu") is Metric.CPU_UTILIZATION

    def test_conflicting_alias_rejected(self):
        reg = MetricAliasRegistry.standard()
        with pytest.raises(ValueError, match="already maps"):
            reg.add_alias("cpu.percent", Metric.MEMORY_UTILIZATION)


class TestStore:
    def test_record_and_scan(self, store):
        for t in range(5):
            store.record(Metric.CPU_UTILIZATION, t, t * 10.0)
        ts, vs = store.series(Metric.CPU_UTILIZATION)
        np.testing.assert_array_equal(ts, np.arange(5.0))
        np.testing.assert_array_equal(vs, np.arange(5.0) * 10)

    def test_record_via_raw_name(self, store):
        store.record("cpu.percent", 1.0, 50.0)
        assert len(store.points(Metric.CPU_UTILIZATION)) == 1

    def test_time_range_filter(self, store):
        for t in range(10):
            store.record(Metric.QUEUE_LENGTH, t, 1.0)
        assert len(store.points(Metric.QUEUE_LENGTH, start=3, end=6)) == 4

    def test_dimension_filter(self, store):
        store.record(Metric.CPU_UTILIZATION, 0, 1.0, {"machine": "a"})
        store.record(Metric.CPU_UTILIZATION, 1, 2.0, {"machine": "b"})
        pts = store.points(Metric.CPU_UTILIZATION, dimensions={"machine": "a"})
        assert [p.value for p in pts] == [1.0]

    def test_out_of_order_inserts_kept_sorted(self, store):
        for t in (5.0, 1.0, 3.0):
            store.record(Metric.CPU_UTILIZATION, t, t)
        ts, _ = store.series(Metric.CPU_UTILIZATION)
        np.testing.assert_array_equal(ts, [1.0, 3.0, 5.0])

    def test_non_finite_value_rejected(self, store):
        with pytest.raises(ValueError):
            store.record(Metric.CPU_UTILIZATION, 0, float("nan"))

    def test_record_series_bulk(self, store):
        store.record_series(Metric.THROUGHPUT_OPS, np.arange(4), np.ones(4))
        assert len(store) == 4

    def test_record_series_rejects_unsorted(self, store):
        with pytest.raises(ValueError, match="non-decreasing"):
            store.record_series(Metric.THROUGHPUT_OPS, [2, 1], [0, 0])

    def test_dimension_values(self, store):
        store.record(Metric.CPU_UTILIZATION, 0, 1.0, {"sku": "gen5"})
        store.record(Metric.CPU_UTILIZATION, 1, 1.0, {"sku": "gen7"})
        assert store.dimension_values(Metric.CPU_UTILIZATION, "sku") == {
            "gen5",
            "gen7",
        }

    def test_empty_series(self, store):
        ts, vs = store.series(Metric.COST_DOLLARS)
        assert ts.size == 0 and vs.size == 0


class TestAggregate:
    def test_mean_binning(self, store):
        # two bins of width 10: [0, 10) -> values 1,3 ; [10, 20) -> 5
        store.record(Metric.CPU_UTILIZATION, 1, 1.0)
        store.record(Metric.CPU_UTILIZATION, 8, 3.0)
        store.record(Metric.CPU_UTILIZATION, 12, 5.0)
        ts, vs = store.aggregate(Metric.CPU_UTILIZATION, bin_width=10, agg="mean")
        np.testing.assert_array_equal(ts, [0.0, 10.0])
        np.testing.assert_array_equal(vs, [2.0, 5.0])

    @pytest.mark.parametrize(
        "agg,expected", [("sum", 4.0), ("max", 3.0), ("min", 1.0), ("count", 2.0)]
    )
    def test_other_aggregations(self, store, agg, expected):
        store.record(Metric.CPU_UTILIZATION, 1, 1.0)
        store.record(Metric.CPU_UTILIZATION, 2, 3.0)
        _, vs = store.aggregate(Metric.CPU_UTILIZATION, 10, agg)
        assert vs[0] == expected

    def test_p95(self, store):
        for i in range(100):
            store.record(Metric.REQUEST_LATENCY_SECONDS, i * 0.01, float(i))
        _, vs = store.aggregate(Metric.REQUEST_LATENCY_SECONDS, 10, "p95")
        assert vs[0] == pytest.approx(np.percentile(np.arange(100.0), 95))

    def test_unknown_agg_rejected(self, store):
        store.record(Metric.CPU_UTILIZATION, 0, 1.0)
        with pytest.raises(ValueError, match="unknown aggregation"):
            store.aggregate(Metric.CPU_UTILIZATION, 10, "median-ish")

    def test_invalid_bin_width(self, store):
        with pytest.raises(ValueError):
            store.aggregate(Metric.CPU_UTILIZATION, 0)


class TestQuery:
    def test_fluent_pipeline(self, store):
        for t in range(20):
            store.record(
                Metric.CPU_UTILIZATION, t, float(t), {"machine": "m1"}
            )
            store.record(
                Metric.CPU_UTILIZATION, t, 100.0, {"machine": "m2"}
            )
        ts, vs = (
            Query(store)
            .metric(Metric.CPU_UTILIZATION)
            .where(machine="m1")
            .between(0, 9)
            .summarize("mean", bin_width=5)
        )
        np.testing.assert_array_equal(ts, [0.0, 5.0])
        np.testing.assert_array_equal(vs, [2.0, 7.0])

    def test_metric_by_raw_name(self, store):
        store.record("cpu.percent", 0, 1.0)
        assert Query(store).metric("cpu.percent").count() == 1

    def test_missing_metric_clause_raises(self, store):
        with pytest.raises(ValueError, match="metric"):
            Query(store).points()

    def test_bad_time_range(self, store):
        with pytest.raises(ValueError):
            Query(store).between(5, 1)
