"""Tests for the telemetry store, schema, and query layer."""

import bisect

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry import (
    Metric,
    MetricAliasRegistry,
    MetricPoint,
    Query,
    TelemetryStore,
)


@pytest.fixture
def store():
    return TelemetryStore()


class TestAliases:
    def test_windows_and_linux_names_resolve_identically(self):
        reg = MetricAliasRegistry.standard()
        windows = reg.resolve(r"\Processor(_Total)\% Processor Time")
        linux = reg.resolve("cpu.percent")
        assert windows is linux is Metric.CPU_UTILIZATION

    def test_semantic_name_resolves_to_itself(self):
        reg = MetricAliasRegistry.standard()
        assert reg.resolve("cpu.utilization") is Metric.CPU_UTILIZATION

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            MetricAliasRegistry.standard().resolve("bogus.metric")

    def test_add_alias(self):
        reg = MetricAliasRegistry.standard()
        reg.add_alias("my.cpu", Metric.CPU_UTILIZATION)
        assert reg.resolve("my.cpu") is Metric.CPU_UTILIZATION

    def test_conflicting_alias_rejected(self):
        reg = MetricAliasRegistry.standard()
        with pytest.raises(ValueError, match="already maps"):
            reg.add_alias("cpu.percent", Metric.MEMORY_UTILIZATION)


class TestStore:
    def test_record_and_scan(self, store):
        for t in range(5):
            store.record(Metric.CPU_UTILIZATION, t, t * 10.0)
        ts, vs = store.series(Metric.CPU_UTILIZATION)
        np.testing.assert_array_equal(ts, np.arange(5.0))
        np.testing.assert_array_equal(vs, np.arange(5.0) * 10)

    def test_record_via_raw_name(self, store):
        store.record("cpu.percent", 1.0, 50.0)
        assert len(store.points(Metric.CPU_UTILIZATION)) == 1

    def test_time_range_filter(self, store):
        for t in range(10):
            store.record(Metric.QUEUE_LENGTH, t, 1.0)
        assert len(store.points(Metric.QUEUE_LENGTH, start=3, end=6)) == 4

    def test_dimension_filter(self, store):
        store.record(Metric.CPU_UTILIZATION, 0, 1.0, {"machine": "a"})
        store.record(Metric.CPU_UTILIZATION, 1, 2.0, {"machine": "b"})
        pts = store.points(Metric.CPU_UTILIZATION, dimensions={"machine": "a"})
        assert [p.value for p in pts] == [1.0]

    def test_out_of_order_inserts_kept_sorted(self, store):
        for t in (5.0, 1.0, 3.0):
            store.record(Metric.CPU_UTILIZATION, t, t)
        ts, _ = store.series(Metric.CPU_UTILIZATION)
        np.testing.assert_array_equal(ts, [1.0, 3.0, 5.0])

    def test_non_finite_value_rejected(self, store):
        with pytest.raises(ValueError):
            store.record(Metric.CPU_UTILIZATION, 0, float("nan"))

    def test_record_series_bulk(self, store):
        store.record_series(Metric.THROUGHPUT_OPS, np.arange(4), np.ones(4))
        assert len(store) == 4

    def test_record_series_rejects_unsorted(self, store):
        with pytest.raises(ValueError, match="non-decreasing"):
            store.record_series(Metric.THROUGHPUT_OPS, [2, 1], [0, 0])

    def test_dimension_values(self, store):
        store.record(Metric.CPU_UTILIZATION, 0, 1.0, {"sku": "gen5"})
        store.record(Metric.CPU_UTILIZATION, 1, 1.0, {"sku": "gen7"})
        assert store.dimension_values(Metric.CPU_UTILIZATION, "sku") == {
            "gen5",
            "gen7",
        }

    def test_empty_series(self, store):
        ts, vs = store.series(Metric.COST_DOLLARS)
        assert ts.size == 0 and vs.size == 0


class TestAggregate:
    def test_mean_binning(self, store):
        # two bins of width 10: [0, 10) -> values 1,3 ; [10, 20) -> 5
        store.record(Metric.CPU_UTILIZATION, 1, 1.0)
        store.record(Metric.CPU_UTILIZATION, 8, 3.0)
        store.record(Metric.CPU_UTILIZATION, 12, 5.0)
        ts, vs = store.aggregate(Metric.CPU_UTILIZATION, bin_width=10, agg="mean")
        np.testing.assert_array_equal(ts, [0.0, 10.0])
        np.testing.assert_array_equal(vs, [2.0, 5.0])

    @pytest.mark.parametrize(
        "agg,expected", [("sum", 4.0), ("max", 3.0), ("min", 1.0), ("count", 2.0)]
    )
    def test_other_aggregations(self, store, agg, expected):
        store.record(Metric.CPU_UTILIZATION, 1, 1.0)
        store.record(Metric.CPU_UTILIZATION, 2, 3.0)
        _, vs = store.aggregate(Metric.CPU_UTILIZATION, 10, agg)
        assert vs[0] == expected

    def test_p95(self, store):
        for i in range(100):
            store.record(Metric.REQUEST_LATENCY_SECONDS, i * 0.01, float(i))
        _, vs = store.aggregate(Metric.REQUEST_LATENCY_SECONDS, 10, "p95")
        assert vs[0] == pytest.approx(np.percentile(np.arange(100.0), 95))

    def test_unknown_agg_rejected(self, store):
        store.record(Metric.CPU_UTILIZATION, 0, 1.0)
        with pytest.raises(ValueError, match="unknown aggregation"):
            store.aggregate(Metric.CPU_UTILIZATION, 10, "median-ish")

    def test_invalid_bin_width(self, store):
        with pytest.raises(ValueError):
            store.aggregate(Metric.CPU_UTILIZATION, 0)


class TestRecordMany:
    def test_out_of_order_then_range_query(self, store):
        ts = np.array([50.0, 10.0, 30.0, 20.0, 40.0])
        store.record_many(Metric.CPU_UTILIZATION, ts, ts * 2)
        out_t, out_v = store.series(Metric.CPU_UTILIZATION, start=15, end=45)
        np.testing.assert_array_equal(out_t, [20.0, 30.0, 40.0])
        np.testing.assert_array_equal(out_v, [40.0, 60.0, 80.0])

    def test_empty_range(self, store):
        store.record_many(Metric.CPU_UTILIZATION, [1.0, 2.0], [5.0, 6.0])
        ts, vs = store.series(Metric.CPU_UTILIZATION, start=10, end=20)
        assert ts.size == 0 and vs.size == 0
        assert store.points(Metric.CPU_UTILIZATION, start=10, end=20) == []

    def test_duplicate_timestamps_keep_arrival_order(self, store):
        store.record(Metric.CPU_UTILIZATION, 1.0, 10.0)
        store.record_many(
            Metric.CPU_UTILIZATION, [1.0, 0.0, 1.0], [20.0, 5.0, 30.0]
        )
        _, vs = store.series(Metric.CPU_UTILIZATION)
        np.testing.assert_array_equal(vs, [5.0, 10.0, 20.0, 30.0])

    def test_non_finite_values_rejected(self, store):
        for bad in (float("nan"), float("inf"), -float("inf")):
            with pytest.raises(ValueError, match="non-finite"):
                store.record_many(Metric.CPU_UTILIZATION, [0.0, 1.0], [1.0, bad])
        assert len(store) == 0

    def test_shape_mismatch_rejected(self, store):
        with pytest.raises(ValueError, match="same shape"):
            store.record_many(Metric.CPU_UTILIZATION, [0.0, 1.0], [1.0])

    def test_returns_count_and_accepts_empty(self, store):
        assert store.record_many(Metric.CPU_UTILIZATION, [], []) == 0
        assert store.record_many(Metric.CPU_UTILIZATION, [0.0], [1.0]) == 1

    def test_single_dict_applies_to_all_points(self, store):
        store.record_many(
            Metric.CPU_UTILIZATION, [0.0, 1.0], [1.0, 2.0], {"machine": "a"}
        )
        assert (
            len(store.points(Metric.CPU_UTILIZATION, dimensions={"machine": "a"}))
            == 2
        )

    def test_per_point_dimensions(self, store):
        store.record_many(
            Metric.CPU_UTILIZATION,
            [0.0, 1.0, 2.0],
            [1.0, 2.0, 3.0],
            [{"machine": "a"}, {"machine": "b"}, None],
        )
        pts = store.points(Metric.CPU_UTILIZATION, dimensions={"machine": "b"})
        assert [p.value for p in pts] == [2.0]
        assert store.dimension_values(Metric.CPU_UTILIZATION, "machine") == {
            "a",
            "b",
        }

    def test_per_point_dimensions_length_mismatch(self, store):
        with pytest.raises(ValueError, match="number of points"):
            store.record_many(
                Metric.CPU_UTILIZATION, [0.0, 1.0], [1.0, 2.0], [{"m": "a"}]
            )

    def test_repeated_dict_objects_intern_once(self, store):
        shared = {"machine": "a", "sku": "gen5"}
        store.record_many(
            Metric.CPU_UTILIZATION, [0.0, 1.0, 2.0], [1.0, 2.0, 3.0],
            [shared, shared, shared],
        )
        pts = store.points(
            Metric.CPU_UTILIZATION, dimensions={"machine": "a", "sku": "gen5"}
        )
        assert len(pts) == 3
        assert len({id(p.dimensions) for p in pts}) == 1

    def test_record_series_still_rejects_unsorted(self, store):
        with pytest.raises(ValueError, match="non-decreasing"):
            store.record_series(Metric.CPU_UTILIZATION, [2.0, 1.0], [0.0, 0.0])


class TestMetricPointDimension:
    def test_lookup_and_missing_key(self):
        point = MetricPoint(
            Metric.CPU_UTILIZATION, 0.0, 1.0, (("machine", "a"), ("sku", "g5"))
        )
        assert point.dimension("machine") == "a"
        assert point.dimension("sku") == "g5"
        assert point.dimension("region") is None

    def test_empty_dimensions(self):
        assert MetricPoint(Metric.CPU_UTILIZATION, 0.0, 1.0).dimension("x") is None


class _ReferenceStore:
    """The old list-based semantics: bisect_right insertion, linear filters."""

    def __init__(self):
        self._stamps = []
        self._points = []  # (timestamp, value, frozen_dims)

    def record(self, timestamp, value, dimensions):
        frozen = tuple(sorted(dimensions.items())) if dimensions else ()
        idx = bisect.bisect_right(self._stamps, timestamp)
        self._stamps.insert(idx, timestamp)
        self._points.insert(idx, (timestamp, value, frozen))

    def query(self, start, end, dimensions):
        lo = 0 if start is None else bisect.bisect_left(self._stamps, start)
        hi = (
            len(self._stamps)
            if end is None
            else bisect.bisect_right(self._stamps, end)
        )
        selected = self._points[lo:hi]
        if dimensions:
            selected = [
                p
                for p in selected
                if all(dict(p[2]).get(k) == v for k, v in dimensions.items())
            ]
        return selected


_DIM_CHOICES = (
    None,
    {"machine": "a"},
    {"machine": "b"},
    {"machine": "a", "sku": "gen5"},
)

_point_lists = st.lists(
    st.tuples(
        st.floats(0, 100, allow_nan=False),
        st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
        st.integers(0, len(_DIM_CHOICES) - 1),
    ),
    max_size=60,
)


class TestColumnarEquivalence:
    """Columnar results must match the old list-based store point for point."""

    @settings(max_examples=60, deadline=None)
    @given(
        points=_point_lists,
        batch=st.booleans(),
        window=st.tuples(
            st.one_of(st.none(), st.floats(0, 100, allow_nan=False)),
            st.one_of(st.none(), st.floats(0, 100, allow_nan=False)),
        ),
        filter_idx=st.integers(0, len(_DIM_CHOICES) - 1),
    )
    def test_points_match_reference(self, points, batch, window, filter_idx):
        reference = _ReferenceStore()
        store = TelemetryStore()
        for t, v, d in points:
            reference.record(t, v, _DIM_CHOICES[d])
        if batch and points:
            store.record_many(
                Metric.CPU_UTILIZATION,
                [t for t, _, _ in points],
                [v for _, v, _ in points],
                [_DIM_CHOICES[d] for _, _, d in points],
            )
        else:
            for t, v, d in points:
                store.record(Metric.CPU_UTILIZATION, t, v, _DIM_CHOICES[d])
        start, end = window
        if start is not None and end is not None and end < start:
            start, end = end, start
        dimensions = _DIM_CHOICES[filter_idx]
        expected = reference.query(start, end, dimensions)
        actual = store.points(
            Metric.CPU_UTILIZATION, start=start, end=end, dimensions=dimensions
        )
        assert [(p.timestamp, p.value, p.dimensions) for p in actual] == expected
        ts, vs = store.series(
            Metric.CPU_UTILIZATION, start=start, end=end, dimensions=dimensions
        )
        np.testing.assert_array_equal(ts, [p[0] for p in expected])
        np.testing.assert_array_equal(vs, [p[1] for p in expected])

    @settings(max_examples=40, deadline=None)
    @given(points=_point_lists, agg=st.sampled_from(
        ["mean", "sum", "max", "min", "count", "p95"]
    ))
    def test_aggregate_matches_reference(self, points, agg):
        store = TelemetryStore()
        if not points:
            return
        store.record_many(
            Metric.CPU_UTILIZATION,
            [t for t, _, _ in points],
            [v for _, v, _ in points],
        )
        out_t, out_v = store.aggregate(Metric.CPU_UTILIZATION, 10.0, agg)
        # Old implementation: np.unique over bins, per-bin python loop.
        ts = np.array(sorted(t for t, _, _ in points))
        order = np.argsort([t for t, _, _ in points], kind="stable")
        vs = np.array([points[i][1] for i in order])
        bins = np.floor(ts / 10.0) * 10.0
        fns = {
            "mean": np.mean,
            "sum": np.sum,
            "max": np.max,
            "min": np.min,
            "count": len,
            "p95": lambda v: float(np.percentile(v, 95)),
        }
        expected_t, expected_v = [], []
        for b in np.unique(bins):
            expected_t.append(b)
            expected_v.append(float(fns[agg](vs[bins == b])))
        np.testing.assert_array_equal(out_t, expected_t)
        np.testing.assert_allclose(out_v, expected_v, rtol=1e-12, atol=1e-12)


class TestQuery:
    def test_fluent_pipeline(self, store):
        for t in range(20):
            store.record(
                Metric.CPU_UTILIZATION, t, float(t), {"machine": "m1"}
            )
            store.record(
                Metric.CPU_UTILIZATION, t, 100.0, {"machine": "m2"}
            )
        ts, vs = (
            Query(store)
            .metric(Metric.CPU_UTILIZATION)
            .where(machine="m1")
            .between(0, 9)
            .summarize("mean", bin_width=5)
        )
        np.testing.assert_array_equal(ts, [0.0, 5.0])
        np.testing.assert_array_equal(vs, [2.0, 7.0])

    def test_metric_by_raw_name(self, store):
        store.record("cpu.percent", 0, 1.0)
        assert Query(store).metric("cpu.percent").count() == 1

    def test_missing_metric_clause_raises(self, store):
        with pytest.raises(ValueError, match="metric"):
            Query(store).points()

    def test_bad_time_range(self, store):
        with pytest.raises(ValueError):
            Query(store).between(5, 1)
