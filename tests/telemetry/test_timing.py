"""Tests for the stopwatch and section profiler."""

import time

import pytest

from repro.telemetry import SectionProfiler, Stopwatch


class TestStopwatch:
    def test_start_stop_accumulates(self):
        watch = Stopwatch()
        watch.start()
        time.sleep(0.01)
        first = watch.stop()
        assert first > 0
        watch.start()
        time.sleep(0.01)
        assert watch.stop() > first

    def test_elapsed_includes_running_segment(self):
        watch = Stopwatch().start()
        time.sleep(0.01)
        assert watch.elapsed > 0
        assert watch.running
        watch.stop()
        assert not watch.running

    def test_context_manager(self):
        with Stopwatch() as watch:
            time.sleep(0.01)
        assert watch.elapsed >= 0.01
        assert not watch.running

    def test_double_start_rejected(self):
        watch = Stopwatch().start()
        with pytest.raises(RuntimeError, match="already running"):
            watch.start()

    def test_stop_when_idle_rejected(self):
        with pytest.raises(RuntimeError, match="not running"):
            Stopwatch().stop()

    def test_reset(self):
        watch = Stopwatch().start()
        watch.stop()
        watch.reset()
        assert watch.elapsed == 0.0
        assert not watch.running


class TestSectionProfiler:
    def test_accumulates_per_section(self):
        profiler = SectionProfiler()
        for _ in range(3):
            with profiler.section("work"):
                time.sleep(0.005)
        stats = profiler.sections["work"]
        assert stats.calls == 3
        assert stats.seconds >= 0.015
        assert stats.mean_seconds == pytest.approx(stats.seconds / 3)

    def test_seconds_for_missing_section_is_zero(self):
        assert SectionProfiler().seconds("never") == 0.0

    def test_report_sorted_by_cost(self):
        profiler = SectionProfiler()
        with profiler.section("fast"):
            pass
        with profiler.section("slow"):
            time.sleep(0.02)
        report = profiler.report()
        assert list(report) == ["slow", "fast"]
        assert report["slow"]["calls"] == 1

    def test_section_records_even_on_exception(self):
        profiler = SectionProfiler()
        with pytest.raises(RuntimeError):
            with profiler.section("boom"):
                raise RuntimeError("x")
        assert profiler.sections["boom"].calls == 1

    def test_summary_mentions_sections(self):
        profiler = SectionProfiler()
        with profiler.section("ingest"):
            pass
        assert "ingest" in profiler.summary()
