"""Tests for OS performance counter analysis helpers."""

import numpy as np
import pytest

from repro.telemetry import (
    Metric,
    TelemetryStore,
    correlate_counters,
    counter_summary,
    detect_saturation,
)


@pytest.fixture
def store():
    return TelemetryStore()


class TestCounterSummary:
    def test_summary_values(self, store):
        store.record_series(
            Metric.CPU_UTILIZATION, np.arange(100), np.arange(100.0)
        )
        summary = counter_summary(store, Metric.CPU_UTILIZATION)
        assert summary.n_samples == 100
        assert summary.mean == pytest.approx(49.5)
        assert summary.p50 == pytest.approx(49.5)
        assert summary.maximum == 99.0
        assert summary.p95 <= summary.p99 <= summary.maximum

    def test_headroom(self, store):
        store.record_series(
            Metric.CPU_UTILIZATION, np.arange(10), np.full(10, 50.0)
        )
        summary = counter_summary(store, Metric.CPU_UTILIZATION)
        assert summary.headroom(100.0) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            summary.headroom(0.0)

    def test_empty_series_rejected(self, store):
        with pytest.raises(ValueError, match="no samples"):
            counter_summary(store, Metric.CPU_UTILIZATION)

    def test_dimension_scoped(self, store):
        store.record(Metric.CPU_UTILIZATION, 0, 10.0, {"machine": "a"})
        store.record(Metric.CPU_UTILIZATION, 0, 90.0, {"machine": "b"})
        summary = counter_summary(
            store, Metric.CPU_UTILIZATION, dimensions={"machine": "a"}
        )
        assert summary.mean == 10.0


class TestSaturation:
    def test_detects_sustained_episode(self, store):
        values = np.concatenate([np.full(5, 50.0), np.full(4, 95.0), [40.0]])
        store.record_series(Metric.CPU_UTILIZATION, np.arange(10), values)
        episodes = detect_saturation(
            store, Metric.CPU_UTILIZATION, limit=100.0, min_consecutive=3
        )
        assert episodes == [(5.0, 8.0)]

    def test_short_blips_ignored(self, store):
        values = np.array([50.0, 95.0, 50.0, 95.0, 50.0])
        store.record_series(Metric.CPU_UTILIZATION, np.arange(5), values)
        assert (
            detect_saturation(
                store, Metric.CPU_UTILIZATION, 100.0, min_consecutive=3
            )
            == []
        )

    def test_episode_running_to_end_of_series(self, store):
        values = np.concatenate([np.full(3, 10.0), np.full(5, 99.0)])
        store.record_series(Metric.CPU_UTILIZATION, np.arange(8), values)
        episodes = detect_saturation(store, Metric.CPU_UTILIZATION, 100.0)
        assert episodes == [(3.0, 7.0)]

    def test_empty_store(self, store):
        assert detect_saturation(store, Metric.CPU_UTILIZATION, 100.0) == []

    def test_validation(self, store):
        with pytest.raises(ValueError):
            detect_saturation(store, Metric.CPU_UTILIZATION, limit=0)
        with pytest.raises(ValueError):
            detect_saturation(store, Metric.CPU_UTILIZATION, 100, threshold=0)
        with pytest.raises(ValueError):
            detect_saturation(
                store, Metric.CPU_UTILIZATION, 100, min_consecutive=0
            )


class TestCorrelation:
    def test_perfectly_coupled_counters(self, store):
        t = np.arange(50.0)
        cpu = 10 + 2 * t
        store.record_series(Metric.CPU_UTILIZATION, t, cpu)
        store.record_series(Metric.TASK_EXECUTION_SECONDS, t, 3 * cpu + 5)
        corr = correlate_counters(
            store,
            Metric.CPU_UTILIZATION,
            Metric.TASK_EXECUTION_SECONDS,
            bin_width=5.0,
        )
        assert corr == pytest.approx(1.0)

    def test_anticorrelated(self, store):
        t = np.arange(50.0)
        store.record_series(Metric.CPU_UTILIZATION, t, t)
        store.record_series(Metric.THROUGHPUT_OPS, t, 100 - t)
        corr = correlate_counters(
            store, Metric.CPU_UTILIZATION, Metric.THROUGHPUT_OPS, 5.0
        )
        assert corr == pytest.approx(-1.0)

    def test_constant_series_returns_zero(self, store):
        t = np.arange(20.0)
        store.record_series(Metric.CPU_UTILIZATION, t, np.full(20, 5.0))
        store.record_series(Metric.THROUGHPUT_OPS, t, t)
        assert (
            correlate_counters(
                store, Metric.CPU_UTILIZATION, Metric.THROUGHPUT_OPS, 5.0
            )
            == 0.0
        )

    def test_insufficient_overlap_rejected(self, store):
        store.record(Metric.CPU_UTILIZATION, 0, 1.0)
        store.record(Metric.THROUGHPUT_OPS, 100, 1.0)
        with pytest.raises(ValueError):
            correlate_counters(
                store, Metric.CPU_UTILIZATION, Metric.THROUGHPUT_OPS, 5.0
            )
