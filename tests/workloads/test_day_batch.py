"""Pin: the fused columnar day path is bit-identical to the job list.

``ScopeWorkloadGenerator.day_batch`` must produce exactly what
``JobBatch.from_jobs(generator.day_jobs(day))`` produces — same job
order, pools, interning order, RNG advancement, and dependency rows —
across configurations, day-access patterns, and pickle round-trips.
This is the vectorized-generation twin of PR 7's stream-vs-eager gate:
any drift here silently forks the repository's view of the world.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.peregrine.repository import JobBatch
from repro.workloads.scope import ScopeWorkloadConfig, ScopeWorkloadGenerator


def assert_batches_identical(batch: JobBatch, ref: JobBatch) -> None:
    """Field-by-field structural equality (pools compared by value)."""
    assert batch.day == ref.day
    assert batch.job_ids == ref.job_ids
    assert np.array_equal(batch.submit_hours, ref.submit_hours)
    assert np.array_equal(batch.plan_codes, ref.plan_codes)
    assert np.array_equal(batch.param_codes, ref.param_codes)
    assert batch.plans == ref.plans
    assert batch.plan_templates == ref.plan_templates
    assert batch.plan_stricts == ref.plan_stricts
    assert len(batch.plan_sig_codes) == len(ref.plan_sig_codes)
    for mine, theirs in zip(batch.plan_sig_codes, ref.plan_sig_codes):
        assert np.array_equal(mine, theirs)
        assert mine.dtype == theirs.dtype
    assert batch.sig_names == ref.sig_names
    assert batch.sig_sizes == ref.sig_sizes
    assert batch.params_pool == ref.params_pool
    assert list(batch.deps_map.items()) == list(ref.deps_map.items())


CONFIGS = {
    "default": ScopeWorkloadConfig(),
    "instances4": ScopeWorkloadConfig(instances_per_template=4),
    "scale5000": ScopeWorkloadConfig.for_scale(5000),
}


class TestFusedDayBatch:
    @pytest.mark.parametrize("name", sorted(CONFIGS))
    def test_bit_identical_to_from_jobs(self, name):
        config = CONFIGS[name]
        fused = ScopeWorkloadGenerator(rng=7, config=config)
        legacy = ScopeWorkloadGenerator(rng=7, config=config)
        for day in range(3):
            batch = fused.day_batch(day)
            ref = JobBatch.from_jobs(legacy.day_jobs(day))
            assert_batches_identical(batch, ref)

    def test_rng_states_advance_identically(self):
        fused = ScopeWorkloadGenerator(rng=7)
        legacy = ScopeWorkloadGenerator(rng=7)
        for day in range(3):
            fused.day_batch(day)
            legacy.day_jobs(day)
        assert fused._day_states.keys() == legacy._day_states.keys()
        for day, state in fused._day_states.items():
            assert state == legacy._day_states[day]

    def test_interleaves_with_day_jobs_and_random_access(self):
        config = ScopeWorkloadConfig()
        legacy = ScopeWorkloadGenerator(rng=11, config=config)
        refs = [
            JobBatch.from_jobs(legacy.day_jobs(day)) for day in range(4)
        ]
        mixed = ScopeWorkloadGenerator(rng=11, config=config)
        assert_batches_identical(mixed.day_batch(0), refs[0])
        assert [j.job_id for j in mixed.day_jobs(1)] == refs[1].job_ids
        assert_batches_identical(mixed.day_batch(2), refs[2])
        # random access backwards replays from the cached day state
        assert_batches_identical(mixed.day_batch(1), refs[1])
        assert_batches_identical(mixed.day_batch(3), refs[3])

    def test_pickle_roundtrip_replays_identically(self):
        generator = ScopeWorkloadGenerator(rng=5)
        refs = [
            JobBatch.from_jobs(
                ScopeWorkloadGenerator(rng=5).day_jobs(day)
            )
            for day in range(2)
        ]
        generator.day_batch(0)
        clone = pickle.loads(pickle.dumps(generator))
        assert_batches_identical(clone.day_batch(1), refs[1])
        assert_batches_identical(clone.day_batch(0), refs[0])

    def test_negative_day_rejected(self):
        with pytest.raises(ValueError):
            ScopeWorkloadGenerator(rng=1).day_batch(-1)

    def test_ingest_batch_matches_record_path(self):
        from repro.core.peregrine.repository import WorkloadRepository

        fused_repo = WorkloadRepository()
        record_repo = WorkloadRepository()
        fused_gen = ScopeWorkloadGenerator(rng=9)
        record_gen = ScopeWorkloadGenerator(rng=9)
        for day in range(2):
            fused_repo.ingest_batch(fused_gen.day_batch(day))
            for job in record_gen.day_jobs(day):
                record_repo.ingest_job(job)
        assert len(fused_repo) == len(record_repo)
        assert fused_repo.days() == record_repo.days()
        for day in range(2):
            assert (
                fused_repo.day_sharing_summary(day)
                == record_repo.day_sharing_summary(day)
            )
