"""Tests for the tenant usage population generator."""

import numpy as np
import pytest

from repro.ml import predictability_score
from repro.workloads import TenantTrace, UsagePopulationConfig, generate_population
from repro.workloads.usage import HOURS_PER_DAY


class TestConfig:
    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            UsagePopulationConfig(n_tenants=0)
        with pytest.raises(ValueError):
            UsagePopulationConfig(n_days=1)
        with pytest.raises(ValueError):
            UsagePopulationConfig(predictable_fraction=1.5)
        with pytest.raises(ValueError):
            UsagePopulationConfig(noise=-1)


class TestPopulation:
    @pytest.fixture
    def population(self):
        return generate_population(
            UsagePopulationConfig(n_tenants=60, n_days=14), rng=0
        )

    def test_population_size_and_length(self, population):
        assert len(population) == 60
        assert all(t.hours == 14 * HOURS_PER_DAY for t in population)

    def test_predictable_fraction_exact(self, population):
        predictable = sum(t.is_predictable for t in population)
        assert predictable == round(0.77 * 60)

    def test_values_nonnegative(self, population):
        assert all(np.all(t.values >= 0) for t in population)

    def test_flags_are_shuffled(self, population):
        flags = [t.is_predictable for t in population]
        # Not all predictable tenants should come first.
        first_block = flags[: sum(flags)]
        assert not all(first_block)

    def test_deterministic_given_seed(self):
        a = generate_population(UsagePopulationConfig(n_tenants=10), rng=5)
        b = generate_population(UsagePopulationConfig(n_tenants=10), rng=5)
        for ta, tb in zip(a, b):
            np.testing.assert_array_equal(ta.values, tb.values)

    def test_stable_tenants_are_actually_predictable(self, population):
        scores_stable = [
            predictability_score(t.values, HOURS_PER_DAY)
            for t in population
            if t.is_predictable
        ]
        scores_erratic = [
            predictability_score(t.values, HOURS_PER_DAY)
            for t in population
            if not t.is_predictable
        ]
        # Ground-truth labels must translate into a measurable gap.
        assert np.mean(scores_stable) > np.mean(scores_erratic) + 0.3

    def test_stable_tenants_have_idle_windows(self, population):
        stable = next(t for t in population if t.is_predictable)
        assert stable.idle_mask().mean() > 0.1

    def test_idle_mask_threshold(self):
        trace = TenantTrace("x", np.array([0.0, 0.1, 0.5]), True)
        np.testing.assert_array_equal(
            trace.idle_mask(threshold=0.2), [True, True, False]
        )
