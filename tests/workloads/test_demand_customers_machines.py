"""Tests for demand traces, customer profiles, and the machine fleet."""

import numpy as np
import pytest

from repro.telemetry import Metric, TelemetryStore
from repro.workloads import (
    AZURE_SKUS,
    MachineFleetSimulator,
    generate_customers,
    generate_demand,
    ground_truth_sku,
)
from repro.workloads.demand import diurnal_rate
from repro.workloads.machines import DEFAULT_SKUS


class TestDemand:
    def test_arrivals_sorted_and_in_range(self):
        trace = generate_demand(n_days=7, rng=0)
        assert np.all(np.diff(trace.arrival_hours) >= 0)
        assert trace.arrival_hours.min() >= 0
        assert trace.arrival_hours.max() <= 7 * 24

    def test_counts_match_rate_roughly(self):
        trace = generate_demand(n_days=30, rng=1)
        counts = trace.counts_per_hour()
        assert counts.sum() == trace.n_requests
        # Poisson sanity: total arrivals within 3 sigma of total rate.
        total_rate = trace.hourly_rate.sum()
        assert abs(trace.n_requests - total_rate) < 4 * np.sqrt(total_rate)

    def test_diurnal_shape_peaks_midday(self):
        rate = diurnal_rate(n_days=1)
        assert int(np.argmax(rate)) == 14

    def test_weekend_dip(self):
        rate = diurnal_rate(n_days=7)
        weekday = rate[:24].sum()
        saturday = rate[5 * 24 : 6 * 24].sum()
        assert saturday < 0.5 * weekday

    def test_spikes_increase_demand(self):
        calm = generate_demand(n_days=14, spike_probability=0.0, rng=2)
        spiky = generate_demand(n_days=14, spike_probability=0.2, rng=2)
        assert spiky.hourly_rate.sum() > calm.hourly_rate.sum()

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            generate_demand(n_days=0)
        with pytest.raises(ValueError):
            generate_demand(base_rate=10, peak_rate=5)
        with pytest.raises(ValueError):
            generate_demand(spike_probability=2.0)


class TestCustomers:
    def test_generation_size_and_determinism(self):
        a = generate_customers(100, rng=0)
        b = generate_customers(100, rng=0)
        assert len(a) == 100
        assert [c.peak_vcores for c in a] == [c.peak_vcores for c in b]

    def test_segments_cover_catalog(self):
        customers = generate_customers(500, rng=1)
        assert len({c.segment for c in customers}) == 5

    def test_effective_requirements_below_peaks(self):
        for c in generate_customers(50, rng=2):
            vcores, memory, iops = c.effective_requirements()
            assert vcores <= c.peak_vcores
            assert memory <= c.peak_memory_gb
            assert iops <= c.peak_iops

    def test_ground_truth_sku_covers_requirements(self):
        for c in generate_customers(200, rng=3):
            sku = ground_truth_sku(c)
            vcores, memory, iops = c.effective_requirements()
            biggest = max(AZURE_SKUS, key=lambda s: s.price)
            if sku != biggest:
                assert sku.covers(vcores, memory, iops)

    def test_ground_truth_is_cheapest_covering(self):
        for c in generate_customers(100, rng=4):
            chosen = ground_truth_sku(c)
            vcores, memory, iops = c.effective_requirements()
            cheaper = [
                s
                for s in AZURE_SKUS
                if s.price < chosen.price and s.covers(vcores, memory, iops)
            ]
            assert not cheaper

    def test_sku_ladder_monotone_price(self):
        gp = [s for s in AZURE_SKUS if s.name.startswith("GP")]
        assert all(
            a.price < b.price and a.vcores < b.vcores
            for a, b in zip(gp, gp[1:])
        )

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            generate_customers(0)


class TestMachineFleet:
    @pytest.fixture
    def fleet(self):
        return MachineFleetSimulator(n_machines_per_sku=4, noise=1.0, rng=0)

    def test_fleet_size(self, fleet):
        assert len(fleet.machines) == 4 * len(DEFAULT_SKUS)

    def test_ground_truth_is_linear(self):
        sku = DEFAULT_SKUS[0]
        deltas = [
            MachineFleetSimulator.cpu_for_containers(sku, n + 1)
            - MachineFleetSimulator.cpu_for_containers(sku, n)
            for n in range(5)
        ]
        assert all(d == pytest.approx(sku.cpu_per_container) for d in deltas)

    def test_cpu_capped_at_100(self):
        sku = DEFAULT_SKUS[0]
        assert MachineFleetSimulator.cpu_for_containers(sku, 10_000) == 100.0

    def test_observe_respects_container_assignment(self, fleet):
        machine_id, sku = fleet.machines[0]
        obs = fleet.observe(0.0, {machine_id: 5})
        target = next(o for o in obs if o.machine_id == machine_id)
        assert target.running_containers == 5

    def test_observe_clips_to_sku_limit(self, fleet):
        machine_id, sku = fleet.machines[0]
        obs = fleet.observe(0.0, {machine_id: 10_000})
        target = next(o for o in obs if o.machine_id == machine_id)
        assert target.running_containers == sku.max_containers

    def test_collect_populates_store(self, fleet):
        store = TelemetryStore()
        fleet.collect(store, n_steps=3)
        assert len(store.points(Metric.CPU_UTILIZATION)) == 3 * len(fleet.machines)
        assert store.dimension_values(Metric.CPU_UTILIZATION, "sku") == {
            s.name for s in DEFAULT_SKUS
        }

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            MachineFleetSimulator(n_machines_per_sku=0)
        with pytest.raises(ValueError):
            MachineFleetSimulator(noise=-1)
        with pytest.raises(ValueError):
            MachineFleetSimulator(rng=0).collect(TelemetryStore(), n_steps=0)
