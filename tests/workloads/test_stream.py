"""Streaming generator: bit-identical replay of the eager path.

The scale tentpole only works if ``stream_days`` is a drop-in for
``generate`` — these tests pin job-for-job equivalence across seeds,
drift rates, and instance multipliers, plus the day-addressable random
access the fabric's streaming sources rely on.
"""

import pytest

from repro.workloads.scope import ScopeWorkloadConfig, ScopeWorkloadGenerator


def _flatten(gen, n_days):
    return [job for day in gen.stream_days(n_days) for job in day]


class TestStreamEagerEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 13])
    def test_stream_matches_generate_across_seeds(self, seed):
        eager = ScopeWorkloadGenerator(rng=seed).generate(n_days=5)
        streamed = _flatten(ScopeWorkloadGenerator(rng=seed), 5)
        assert eager.jobs == streamed

    @pytest.mark.parametrize("drift", [0.0, 0.01, 0.25])
    def test_stream_matches_generate_across_drift(self, drift):
        config = ScopeWorkloadConfig(drift_per_day=drift)
        eager = ScopeWorkloadGenerator(rng=5, config=config).generate(n_days=4)
        streamed = _flatten(ScopeWorkloadGenerator(rng=5, config=config), 4)
        assert eager.jobs == streamed

    def test_stream_matches_generate_with_instances(self):
        config = ScopeWorkloadConfig(instances_per_template=4)
        eager = ScopeWorkloadGenerator(rng=9, config=config).generate(n_days=3)
        streamed = _flatten(ScopeWorkloadGenerator(rng=9, config=config), 3)
        assert eager.jobs == streamed

    def test_stream_does_not_consume_the_eager_rng(self):
        gen = ScopeWorkloadGenerator(rng=4)
        gen.day_jobs(3)  # streaming reads must not move self._rng
        assert gen.generate(n_days=2).jobs == (
            ScopeWorkloadGenerator(rng=4).generate(n_days=2).jobs
        )


class TestDayAddressing:
    def test_day_jobs_random_access_out_of_order(self):
        eager = ScopeWorkloadGenerator(rng=2).generate(n_days=5)
        gen = ScopeWorkloadGenerator(rng=2)
        for day in (4, 0, 2, 4, 1):
            assert gen.day_jobs(day) == list(eager.by_day(day))

    def test_iter_jobs_yields_submit_sorted_jobs(self):
        gen = ScopeWorkloadGenerator(rng=0)
        hours = [job.submit_hour for job in gen.iter_jobs(2)]
        assert hours == sorted(hours)
        assert all(48.0 <= h < 72.0 for h in hours)

    def test_stream_days_start_day_offset(self):
        eager = ScopeWorkloadGenerator(rng=6).generate(n_days=6)
        gen = ScopeWorkloadGenerator(rng=6)
        tail = [j for day in gen.stream_days(2, start_day=4) for j in day]
        assert tail == [j for d in (4, 5) for j in eager.by_day(d)]

    def test_rejects_bad_days(self):
        gen = ScopeWorkloadGenerator(rng=0)
        with pytest.raises(ValueError):
            gen.day_jobs(-1)
        with pytest.raises(ValueError):
            list(gen.stream_days(0))


class TestForScale:
    def test_for_scale_hits_requested_volume(self):
        config = ScopeWorkloadConfig.for_scale(10_000)
        gen = ScopeWorkloadGenerator(rng=3, config=config)
        day = gen.day_jobs(0)
        assert 0.9 * 10_000 <= len(day) <= 1.1 * 10_000

    def test_for_scale_keeps_calibrated_fractions(self):
        config = ScopeWorkloadConfig.for_scale(5_000)
        day = ScopeWorkloadGenerator(rng=1, config=config).day_jobs(0)
        recurring = sum(1 for j in day if j.template_id is not None)
        assert abs(recurring / len(day) - config.recurring_fraction) < 0.05

    def test_for_scale_respects_overrides(self):
        config = ScopeWorkloadConfig.for_scale(
            1_000, n_recurring_templates=50, drift_per_day=0.05
        )
        assert config.n_recurring_templates == 50
        assert config.drift_per_day == 0.05
        assert config.instances_per_template >= 1

    def test_instance_job_ids_are_unique(self):
        config = ScopeWorkloadConfig(instances_per_template=3)
        day = ScopeWorkloadGenerator(rng=0, config=config).day_jobs(0)
        ids = [j.job_id for j in day]
        assert len(ids) == len(set(ids))


class TestWorkloadViews:
    def test_by_day_is_memoized(self):
        workload = ScopeWorkloadGenerator(rng=0).generate(n_days=3)
        assert workload.by_day(1) is workload.by_day(1)
        assert isinstance(workload.by_day(1), tuple)

    def test_shards_are_memoized(self):
        workload = ScopeWorkloadGenerator(rng=0).generate(n_days=3)
        assert workload.shards(8) is workload.shards(8)
        assert workload.shards(4) is not workload.shards(8)
