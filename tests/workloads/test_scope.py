"""Tests for the SCOPE-like workload generator and its calibration."""

import pytest

from repro.engine import signature, template_signature
from repro.engine.signatures import enumerate_signatures
from repro.workloads import ScopeWorkloadConfig, ScopeWorkloadGenerator


@pytest.fixture(scope="module")
def workload():
    return ScopeWorkloadGenerator(rng=0).generate(n_days=5)


class TestConfigValidation:
    def test_invalid_fractions(self):
        with pytest.raises(ValueError):
            ScopeWorkloadConfig(recurring_fraction=1.5)
        with pytest.raises(ValueError):
            ScopeWorkloadConfig(pipeline_fraction=-0.1)
        with pytest.raises(ValueError):
            ScopeWorkloadConfig(n_recurring_templates=0)
        with pytest.raises(ValueError):
            ScopeWorkloadConfig(pipeline_length=(1, 4))
        with pytest.raises(ValueError):
            ScopeWorkloadConfig(pipeline_length=(3, 2))


class TestStructure:
    def test_jobs_sorted_by_submit_time(self, workload):
        hours = [j.submit_hour for j in workload.jobs]
        assert hours == sorted(hours)

    def test_job_lookup(self, workload):
        job = workload.jobs[0]
        assert workload.job(job.job_id) is job
        with pytest.raises(KeyError):
            workload.job("nope")

    def test_every_day_has_jobs(self, workload):
        for day in range(5):
            assert workload.by_day(day)

    def test_recurring_jobs_repeat_daily(self, workload):
        per_template = workload.by_template(0)
        assert len(per_template) == 5  # one instance per day

    def test_dependencies_reference_earlier_jobs(self, workload):
        for job in workload.jobs:
            for dep in job.depends_on:
                producer = workload.job(dep)
                assert producer.submit_hour <= job.submit_hour
                assert producer.day == job.day

    def test_pipeline_consumer_scans_producer_output(self, workload):
        consumers = [
            j
            for j in workload.jobs
            if j.depends_on and j.pipeline_id is not None
        ]
        assert consumers
        job = consumers[0]
        producer = workload.job(job.depends_on[0])
        assert f"out_t{producer.template_id}" in job.plan.tables()

    def test_derived_tables_registered(self, workload):
        derived = [
            t for t in workload.catalog.tables() if t.name.startswith("out_t")
        ]
        assert derived
        assert all(t.n_rows >= 1_000 for t in derived)

    def test_plans_reference_known_tables(self, workload):
        for job in workload.jobs:
            for table in job.plan.tables():
                assert table in workload.catalog

    def test_deterministic_given_seed(self):
        a = ScopeWorkloadGenerator(rng=3).generate(n_days=2)
        b = ScopeWorkloadGenerator(rng=3).generate(n_days=2)
        assert [j.job_id for j in a.jobs] == [j.job_id for j in b.jobs]
        assert [signature(j.plan) for j in a.jobs] == [
            signature(j.plan) for j in b.jobs
        ]


class TestRecurrenceSemantics:
    def test_same_template_same_signature_across_days(self, workload):
        instances = workload.by_template(0)
        templates = {template_signature(j.plan) for j in instances}
        assert len(templates) == 1

    def test_literals_drift_across_days(self, workload):
        instances = workload.by_template(0)
        strict = {signature(j.plan) for j in instances}
        assert len(strict) == len(instances)  # values differ every day

    def test_params_recorded_and_drifting(self, workload):
        instances = workload.by_template(0)
        values = [j.params["filter_value"] for j in instances]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_adhoc_jobs_have_no_template(self, workload):
        adhoc = [j for j in workload.jobs if not j.is_recurring]
        assert adhoc
        assert all(j.template_id is None for j in adhoc)


class TestCalibration:
    """The generator must reproduce the paper's workload statistics."""

    def test_recurring_fraction_above_60_percent(self, workload):
        assert workload.recurring_fraction() > 0.60

    def test_dependency_fraction_near_70_percent(self, workload):
        assert 0.60 <= workload.dependency_fraction() <= 0.80

    def test_shared_subexpression_fraction_near_40_percent(self, workload):
        day = workload.by_day(2)
        owners: dict[str, set] = {}
        for job in day:
            for sig, node in enumerate_signatures(job.plan).items():
                if node.size >= 2:
                    owners.setdefault(sig, set()).add(job.job_id)
        sharing = set()
        for group in owners.values():
            if len(group) > 1:
                sharing |= group
        fraction = len(sharing) / len(day)
        assert 0.25 <= fraction <= 0.60

    def test_shared_fragments_match_strictly_within_day(self, workload):
        # The whole point of fragments: same-day jobs share *strict*
        # signatures, enabling CloudViews-style reuse.
        day = workload.by_day(1)
        owners: dict[str, set] = {}
        for job in day:
            for sig, node in enumerate_signatures(job.plan).items():
                if node.size >= 2:
                    owners.setdefault(sig, set()).add(job.job_id)
        assert any(len(group) >= 2 for group in owners.values())


class TestShards:
    def test_shards_partition_the_jobs(self, workload):
        shards = workload.shards(n_shards=8)
        assert len(shards) == 8
        flat = [job.job_id for shard in shards for job in shard]
        assert sorted(flat) == sorted(job.job_id for job in workload.jobs)

    def test_sharding_is_deterministic(self, workload):
        first = [[job.job_id for job in shard] for shard in workload.shards(8)]
        second = [[job.job_id for job in shard] for shard in workload.shards(8)]
        assert first == second

    def test_recurring_instances_stay_together(self, workload):
        # All instances of one template hash to one shard, so per-shard
        # analyses see whole templates, never split ones.
        shards = workload.shards(n_shards=8)
        for template_id in range(5):
            owners = {
                index
                for index, shard in enumerate(shards)
                for job in shard
                if job.template_id == template_id
            }
            assert len(owners) == 1
