"""Admission control: token buckets, queue shedding, deadlines.

Everything runs on a caller-supplied clock, so every rejection here is
deterministic — no sleeps, no wall time.
"""

import pytest

from repro.serve.admission import AdmissionController, TokenBucket


class TestTokenBucket:
    def test_burst_capacity_then_throttle(self):
        bucket = TokenBucket(rate=1.0, capacity=2.0, now=0.0)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)  # burst spent, no time passed

    def test_refills_continuously_with_time(self):
        bucket = TokenBucket(rate=2.0, capacity=2.0, now=0.0)
        assert bucket.try_take(0.0) and bucket.try_take(0.0)
        assert not bucket.try_take(0.1)
        assert bucket.try_take(0.6)  # 0.5s later: one token back

    def test_refill_is_capped_at_capacity(self):
        bucket = TokenBucket(rate=100.0, capacity=1.0, now=0.0)
        assert bucket.try_take(1000.0)
        assert not bucket.try_take(1000.0)

    def test_rejects_nonpositive_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, capacity=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, capacity=0.0)


class TestAdmissionController:
    def test_admits_under_all_limits(self):
        controller = AdmissionController()
        decision = controller.admit("t", now=0.0, queue_depth=0)
        assert decision.admitted and decision.status == 200
        assert controller.admitted == 1

    def test_throttles_tenant_over_rate_with_429(self):
        controller = AdmissionController(rate_per_tenant=1.0, burst=1.0)
        assert controller.admit("t", 0.0, 0).admitted
        decision = controller.admit("t", 0.0, 0)
        assert not decision.admitted and decision.status == 429
        assert "rate limit" in decision.reason
        assert controller.throttled == 1

    def test_tenants_get_independent_buckets(self):
        controller = AdmissionController(rate_per_tenant=1.0, burst=1.0)
        assert controller.admit("a", 0.0, 0).admitted
        assert controller.admit("b", 0.0, 0).admitted  # b's own bucket
        assert not controller.admit("a", 0.0, 0).admitted

    def test_sheds_on_queue_depth_with_503(self):
        controller = AdmissionController(max_queue_depth=2)
        decision = controller.admit("t", 0.0, queue_depth=2)
        assert not decision.admitted and decision.status == 503
        assert "queue depth" in decision.reason
        assert controller.shed == 1

    def test_expired_deadline_rejected_with_504_before_other_gates(self):
        controller = AdmissionController(rate_per_tenant=1.0, burst=1.0)
        decision = controller.admit("t", now=5.0, queue_depth=0, deadline=4.0)
        assert not decision.admitted and decision.status == 504
        assert controller.expired == 1
        assert controller.throttled == 0  # no token was spent

    def test_future_deadline_admits(self):
        controller = AdmissionController()
        assert controller.admit("t", now=1.0, queue_depth=0, deadline=2.0).admitted

    def test_shed_fraction_and_summary(self):
        controller = AdmissionController(rate_per_tenant=1.0, burst=1.0)
        controller.admit("t", 0.0, 0)
        controller.admit("t", 0.0, 0)  # throttled
        summary = controller.summary()
        assert summary["admitted"] == 1
        assert summary["throttled"] == 1
        assert summary["shed_fraction"] == 0.5
