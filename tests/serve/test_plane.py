"""The QueryPlane end to end: one fabric, served and ticked at once."""

import asyncio

import pytest

from repro.core.service import ServeRequest
from repro.fabric import ControlPlane, FleetConfig, build_fleet
from repro.obs import ObservabilityRuntime
from repro.serve import QueryPlane, TrafficGenerator
from repro.workloads import generate_customers


@pytest.fixture(scope="module")
def fabric():
    plane = ControlPlane()
    build_fleet(
        plane,
        FleetConfig(seed=0, days=6, include=("doppler", "peregrine")),
    )
    plane.run_days(2)
    yield plane
    plane.close()


def _recommend(customer, tenant="contoso", deadline=None) -> ServeRequest:
    return ServeRequest(
        op="recommend", subject=customer, tenant=tenant, deadline=deadline
    )


def _customer(seed: int = 5):
    return generate_customers(1, rng=seed)[0]


def _run(coro):
    return asyncio.run(coro)


class TestRequestPath:
    def test_recommend_roundtrip_opens_a_session(self, fabric):
        plane = QueryPlane(fabric)
        response = _run(plane.handle("doppler", _recommend(_customer())))
        assert response.status == 200
        assert response.result.sku.name
        session = plane.sessions.peek("contoso")
        assert session is not None and session.ok == 1

    def test_unknown_endpoint_is_404(self, fabric):
        plane = QueryPlane(fabric)
        response = _run(plane.handle("teleport", ServeRequest(op="recommend")))
        assert response.status == 404

    def test_unknown_op_is_404_from_the_driver(self, fabric):
        plane = QueryPlane(fabric)
        response = _run(
            plane.handle("doppler", ServeRequest(op="teleport", tenant="t"))
        )
        assert response.status == 404

    def test_peregrine_stats_served(self, fabric):
        plane = QueryPlane(fabric)
        response = _run(
            plane.handle("peregrine", ServeRequest(op="stats", tenant="t"))
        )
        assert response.status == 200
        assert response.result["jobs"] > 0

    def test_repeat_request_hits_the_cache_with_the_same_object(self, fabric):
        plane = QueryPlane(fabric)
        customer = _customer()
        first = _run(plane.handle("doppler", _recommend(customer)))
        second = _run(plane.handle("doppler", _recommend(customer)))
        assert second is first  # the cached response object itself
        assert plane.cache.hits == 1
        assert plane.sessions.peek("contoso").cache_hits == 1

    def test_tenants_do_not_share_cache_entries(self, fabric):
        plane = QueryPlane(fabric)
        customer = _customer()
        _run(plane.handle("doppler", _recommend(customer, tenant="a")))
        _run(plane.handle("doppler", _recommend(customer, tenant="b")))
        assert plane.cache.hits == 0


class TestAdmissionOnThePlane:
    def test_over_rate_tenant_gets_429(self, fabric):
        plane = QueryPlane(fabric, rate_per_tenant=0.001, burst=1.0)

        async def drive():
            first = await plane.handle("doppler", _recommend(_customer(6)))
            second = await plane.handle("doppler", _recommend(_customer(7)))
            return first, second

        first, second = _run(drive())
        assert first.status == 200
        assert second.status == 429
        assert plane.sessions.peek("contoso").rejected == 1

    def test_overload_sheds_with_503(self, fabric):
        plane = QueryPlane(fabric, max_queue_depth=2)
        customers = generate_customers(12, rng=8)

        async def drive():
            return await plane.handle_many(
                "doppler", [_recommend(c) for c in customers]
            )

        responses = _run(drive())
        statuses = {r.status for r in responses}
        assert 503 in statuses  # overload shed
        assert 200 in statuses  # goodput preserved
        assert plane.admission.shed > 0

    def test_expired_deadline_gets_504(self, fabric):
        plane = QueryPlane(fabric)
        response = _run(
            plane.handle("doppler", _recommend(_customer(), deadline=-1.0))
        )
        assert response.status == 504


class TestObservability:
    def test_serve_metrics_land_in_the_store_via_aliases(self, fabric):
        obs = ObservabilityRuntime()
        plane = QueryPlane(fabric, obs=obs)
        _run(plane.handle("doppler", _recommend(_customer())))
        resolve = obs.store.aliases.resolve
        _, latencies = obs.store.series(resolve("serve.latency.seconds"))
        assert latencies.size == 1
        _, throughput = obs.store.series(
            resolve("serve.requests"), dimensions={"endpoint": "doppler"}
        )
        assert throughput.size == 1
        _, sessions = obs.store.series(resolve("serve.sessions.active"))
        assert float(sessions[-1]) == 1.0

    def test_requests_emit_serve_layer_spans(self, fabric):
        obs = ObservabilityRuntime()
        plane = QueryPlane(fabric, obs=obs)
        _run(plane.handle("doppler", _recommend(_customer())))
        names = [s.name for s in obs.tracer.spans]
        assert "serve.doppler.recommend" in names

    def test_rollup_shows_the_serve_layer_after_flush(self, fabric):
        obs = ObservabilityRuntime()
        plane = QueryPlane(fabric, obs=obs)
        _run(plane.handle("doppler", _recommend(_customer())))
        obs.flush()
        assert "serve" in obs.layer_rollup()


class TestBackgroundTicking:
    def test_tick_advances_the_fabric_between_queries(self):
        fabric = ControlPlane()
        build_fleet(
            fabric,
            FleetConfig(seed=0, days=4, include=("doppler", "peregrine")),
        )
        fabric.run_days(2)
        try:
            plane = QueryPlane(fabric)
            customer = _customer()

            async def drive():
                first = await plane.handle("doppler", _recommend(customer))
                await plane.tick_background(1)
                second = await plane.handle("doppler", _recommend(customer))
                return first, second

            first, second = _run(drive())
            assert fabric.day == 3
            assert plane.ticked_days == 1
            assert first.status == 200 and second.status == 200
            # The tick moved the endpoint's epoch: the second lookup is
            # a fresh model call, never the pre-tick cache entry.
            assert plane.cache.hits == 0
            assert second is not first
        finally:
            fabric.close()


class TestTrafficGenerator:
    def test_same_seed_same_stream(self, fabric):
        first = TrafficGenerator(fabric, seed=3).stream(20)
        second = TrafficGenerator(fabric, seed=3).stream(20)
        assert [(e, r.op, r.tenant) for e, r in first] == [
            (e, r.op, r.tenant) for e, r in second
        ]

    def test_only_fabric_endpoints_are_generated(self, fabric):
        generator = TrafficGenerator(fabric, seed=0)
        assert set(generator.endpoints()) <= set(fabric.service_names())

    def test_stats_rollup_is_json_serializable(self, fabric):
        import json

        plane = QueryPlane(fabric)
        generator = TrafficGenerator(fabric, seed=1)

        async def drive():
            for endpoint, request in generator.stream(10):
                await plane.handle(endpoint, request)
            plane.drain()

        _run(drive())
        payload = json.loads(json.dumps(plane.stats()))
        assert payload["requests"] == 10
        assert "p99" in payload["latency"]
