"""Ticked and queried flows share one implementation — the refactor gate.

``tests/serve/data/fleet_report_pre_refactor.json`` holds the canonical
final-report bytes of the seed-0, 4-day core fleet captured *before*
the pipeline drivers were rerouted through the serve contract.  The
same run must still produce those bytes, byte for byte: rerouting every
driver stage through ``serve().unwrap()`` changed the plumbing, never
the behaviour.
"""

from pathlib import Path

from repro.fabric import ControlPlane, FleetConfig, build_fleet

BASELINE = Path(__file__).parent / "data" / "fleet_report_pre_refactor.json"


class TestTickedFlowMatchesPreRefactorReport:
    def test_seed0_four_day_fleet_is_byte_identical(self):
        fabric = ControlPlane()
        try:
            build_fleet(fabric, FleetConfig(seed=0, days=4))
            fabric.run_days(4)
            assert fabric.report_bytes() == BASELINE.read_bytes()
        finally:
            fabric.close()

    def test_queried_flow_reuses_the_ticked_implementation(self):
        """The driver op a query hits is the method the tick path calls."""
        from repro.core.doppler import SkuRecommender
        from repro.core.service import ServeRequest
        from repro.workloads import generate_customers

        fabric = ControlPlane()
        try:
            build_fleet(
                fabric,
                FleetConfig(seed=0, days=4, include=("doppler",)),
            )
            fabric.run_days(2)
            driver = fabric.bindings[0].driver
            customer = generate_customers(1, rng=9)[0]
            served = driver.serve(
                ServeRequest(op="recommend", subject=customer)
            ).unwrap()
            # An identical twin recommender answering directly (the old
            # pre-refactor call shape) must agree decision for decision.
            twin = SkuRecommender(rng=0).observe(list(driver.historical))
            direct = twin.recommend(customer)
            assert served.sku.name == direct.sku.name
            assert served.segment == direct.segment
            assert served.ranked_options == direct.ranked_options
        finally:
            fabric.close()
