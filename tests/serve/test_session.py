"""Per-tenant sessions: lazy open, deterministic ids, explicit close."""

from repro.serve.session import SessionManager


class TestSessionManager:
    def test_first_request_opens_a_session(self):
        manager = SessionManager()
        session = manager.get("contoso", now=1.0)
        assert session.session_id == "contoso#1"
        assert manager.active == 1 and manager.opened == 1

    def test_same_tenant_reuses_the_live_session(self):
        manager = SessionManager()
        assert manager.get("t") is manager.get("t")
        assert manager.opened == 1

    def test_close_then_reopen_gets_a_fresh_ordinal(self):
        manager = SessionManager()
        manager.get("t")
        closed = manager.close("t")
        assert closed is not None and manager.closed == 1
        assert manager.get("t").session_id == "t#2"

    def test_close_unknown_tenant_is_a_noop(self):
        manager = SessionManager()
        assert manager.close("ghost") is None
        assert manager.closed == 0

    def test_note_counts_requests_and_ops(self):
        manager = SessionManager()
        session = manager.get("t", now=0.0)
        session.note("recommend", now=1.0)
        session.note("recommend", now=2.0)
        session.note("stats", now=3.0)
        assert session.requests == 3
        assert session.last_seen == 3.0
        assert session.to_dict()["ops"] == {"recommend": 2, "stats": 1}

    def test_summary_is_deterministic_and_sorted(self):
        manager = SessionManager()
        manager.get("zeta").note("a", 0.0)
        manager.get("alpha").note("b", 0.0)
        summary = manager.summary()
        assert list(summary["tenants"]) == ["alpha", "zeta"]
        assert summary["active"] == 2
