"""Signature-keyed caching: identity, epochs, lifecycle eviction."""

import copy
import pickle

import pytest

from repro.core.service import ServeRequest, ServeResponse
from repro.fabric.lifecycle import ModelLifecycle
from repro.serve.cache import RecommendationCache, subject_key


def _ok(result) -> ServeResponse:
    return ServeResponse(status=200, result=result)


class TestSubjectKey:
    def test_structurally_identical_plans_share_a_key(self):
        from repro.workloads import ScopeWorkloadGenerator

        plan = ScopeWorkloadGenerator(rng=0).generate(n_days=1).jobs[0].plan
        assert subject_key(plan) == subject_key(copy.deepcopy(plan))
        assert subject_key(plan).startswith("strict:")

    def test_different_plans_key_differently(self):
        from repro.workloads import ScopeWorkloadGenerator

        jobs = ScopeWorkloadGenerator(rng=0).generate(n_days=1).jobs
        distinct = {subject_key(j.plan) for j in jobs}
        assert len(distinct) > 1

    def test_primitives_key_by_value(self):
        assert subject_key("srv-1") == "str:srv-1"
        assert subject_key(7) == "int:7"
        assert subject_key(None) == "none"

    def test_arbitrary_objects_key_by_content_digest(self):
        a = subject_key({"peak": 4.0})
        assert a.startswith("blob:")
        assert a == subject_key({"peak": 4.0})
        assert a != subject_key({"peak": 5.0})


class TestCacheBasics:
    def test_roundtrip_and_counters(self):
        cache = RecommendationCache()
        key = cache.key("t", "doppler", "recommend", "c-1")
        assert cache.get(key) is None
        cache.put(key, _ok("sku"))
        hit = cache.get(key)
        assert hit is not None and hit.result == "sku"
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_error_responses_are_never_cached(self):
        cache = RecommendationCache()
        key = cache.key("t", "doppler", "recommend", "c-1")
        cache.put(key, ServeResponse(status=500, error="boom"))
        assert len(cache) == 0

    def test_lru_eviction_at_capacity(self):
        cache = RecommendationCache(max_entries=2)
        keys = [cache.key("t", "e", "recommend", i) for i in range(3)]
        for i, key in enumerate(keys):
            cache.put(key, _ok(i))
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.get(keys[0]) is None  # oldest went first
        assert cache.get(keys[2]).result == 2

    def test_epoch_is_part_of_the_key(self):
        cache = RecommendationCache()
        old = cache.key("t", "e", "recommend", "c", epoch=3)
        cache.put(old, _ok("stale"))
        fresh = cache.key("t", "e", "recommend", "c", epoch=4)
        assert old != fresh
        assert cache.get(fresh) is None  # a tick moves the epoch: miss

    def test_tenant_and_model_version_partition_entries(self):
        cache = RecommendationCache()
        base = dict(endpoint="e", op="recommend", subject="c")
        a = cache.key("tenant-a", model_version=1, **base)
        b = cache.key("tenant-b", model_version=1, **base)
        v2 = cache.key("tenant-a", model_version=2, **base)
        assert len({a, b, v2}) == 3

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="max_entries"):
            RecommendationCache(max_entries=0)


class TestLifecycleEviction:
    def test_promote_evicts_entries_tagged_with_the_model(self):
        lifecycle = ModelLifecycle()
        cache = RecommendationCache(lifecycle=lifecycle)
        key = cache.key("t", "e", "recommend", "c")
        other = cache.key("t", "e2", "recommend", "c")
        cache.put(key, _ok("old"), model="latency-model")
        cache.put(other, _ok("kept"), model="other-model")
        lifecycle.propose("latency-model", object(), candidate_metric=0.5)
        assert cache.get(key) is None  # promote evicted it
        assert cache.get(other).result == "kept"
        assert cache.invalidations == 1

    def test_rollback_evicts_entries_tagged_with_the_model(self):
        lifecycle = ModelLifecycle()
        lifecycle.propose("m", object(), candidate_metric=0.5)
        version = lifecycle.shadow("m", object())
        lifecycle.registry.promote("m", version)
        cache = RecommendationCache(lifecycle=lifecycle)
        key = cache.key("t", "e", "recommend", "c", model_version=version)
        cache.put(key, _ok("from-v2"), model="m")
        assert lifecycle.rollback("m") is not None
        assert cache.get(key) is None
        assert cache.invalidations == 1

    def test_actions_before_cache_construction_do_not_evict(self):
        lifecycle = ModelLifecycle()
        lifecycle.propose("m", object(), candidate_metric=0.5)
        cache = RecommendationCache(lifecycle=lifecycle)
        key = cache.key("t", "e", "recommend", "c")
        cache.put(key, _ok("fresh"), model="m")
        assert cache.get(key).result == "fresh"  # old promote already seen

    def test_model_version_reads_the_production_record(self):
        lifecycle = ModelLifecycle()
        cache = RecommendationCache(lifecycle=lifecycle)
        assert cache.model_version("m") is None
        lifecycle.propose("m", object(), candidate_metric=0.5)
        assert cache.model_version("m") == 1
        assert cache.model_version("") is None


class TestCachedEqualsUncached:
    """The byte-identity acceptance gate, against an identical twin."""

    def test_cached_recommendation_is_byte_identical_to_uncached(self):
        from repro.core.doppler import SkuRecommender
        from repro.workloads import generate_customers

        customers = generate_customers(40, rng=0)
        subject = generate_customers(5, rng=1)[3]

        def fitted() -> SkuRecommender:
            return SkuRecommender(rng=0).observe(customers)

        serving, twin = fitted(), fitted()
        cache = RecommendationCache()
        key = cache.key("t", "doppler", "recommend", subject)
        first = serving.serve(ServeRequest(op="recommend", subject=subject))
        cache.put(key, first)
        hit = cache.get(key)
        assert hit is first  # the cache returns the response object itself
        uncached = twin.serve(ServeRequest(op="recommend", subject=subject))
        assert pickle.dumps(hit.result) == pickle.dumps(uncached.result)
