"""Micro-batching: coalescing, bit-identity, and in-queue deadlines."""

import asyncio
import pickle

from repro.core.doppler import SkuRecommender
from repro.core.service import ServeRequest
from repro.fabric.pipeline import PipelineDriver
from repro.serve.batching import MicroBatcher
from repro.workloads import generate_customers


def _fitted(seed: int = 0) -> SkuRecommender:
    return SkuRecommender(rng=seed).observe(generate_customers(40, rng=0))


class TestBatchedBitIdentity:
    """The contract the dispatcher relies on: batch == serial, per row."""

    def test_serve_many_coalesces_and_matches_serial_bytes(self):
        subjects = generate_customers(12, rng=1)
        requests = [ServeRequest(op="recommend", subject=s) for s in subjects]
        batched = _fitted().serve_many(requests)
        serial = [_fitted().serve(r) for r in requests]
        assert all(r.status == 200 for r in batched)
        assert pickle.dumps([r.result for r in batched]) == pickle.dumps(
            [r.result for r in serial]
        )

    def test_recommend_batch_matches_serial_recommend(self):
        subjects = generate_customers(8, rng=2)
        batched = _fitted().recommend_batch(subjects)
        serial = [_fitted(0).recommend(s) for s in subjects]
        # recommend() appends to per-service history; compare fresh twins
        assert pickle.dumps(batched) == pickle.dumps(
            _fitted().recommend_batch(subjects)
        )
        assert [r.sku.name for r in batched] == [r.sku.name for r in serial]
        assert [r.segment for r in batched] == [r.segment for r in serial]

    def test_mixed_op_batch_falls_back_to_serial(self):
        service = _fitted()
        requests = [
            ServeRequest(op="recommend", subject=generate_customers(1, rng=3)[0]),
            ServeRequest(op="report"),
        ]
        responses = service.serve_many(requests)
        assert [r.status for r in responses] == [200, 200]

    def test_unfitted_recommender_surfaces_per_request_500s(self):
        service = SkuRecommender(rng=0)
        subjects = generate_customers(3, rng=1)
        responses = service.serve_many(
            [ServeRequest(op="recommend", subject=s) for s in subjects]
        )
        assert [r.status for r in responses] == [500, 500, 500]
        assert all(isinstance(r.exception, RuntimeError) for r in responses)


class _CountingDriver(PipelineDriver):
    """Driver that records how serve_many batches arrive."""

    name = "counting"

    def __init__(self) -> None:
        self.batches: list[int] = []

    def observe(self, ctx) -> None:  # pragma: no cover — declared, unticked
        pass

    def serve_many(self, requests):
        from repro.core.service import ServeResponse

        self.batches.append(len(requests))
        return [
            ServeResponse(status=200, result=r.subject, op=r.op)
            for r in requests
        ]


class TestMicroBatcher:
    def test_full_bucket_flushes_as_one_batch(self):
        driver = _CountingDriver()
        batcher = MicroBatcher(max_batch=4, max_delay=60.0)

        async def drive():
            return await asyncio.gather(
                *(
                    batcher.submit(
                        "e", driver, ServeRequest(op="recommend", subject=i)
                    )
                    for i in range(4)
                )
            )

        responses = asyncio.run(drive())
        assert [r.result for r in responses] == [0, 1, 2, 3]
        assert driver.batches == [4]
        assert batcher.coalesced == 4
        assert batcher.largest_batch == 4

    def test_partial_bucket_flushes_on_delay(self):
        driver = _CountingDriver()
        batcher = MicroBatcher(max_batch=100, max_delay=0.005)

        async def drive():
            return await asyncio.gather(
                *(
                    batcher.submit(
                        "e", driver, ServeRequest(op="recommend", subject=i)
                    )
                    for i in range(3)
                )
            )

        responses = asyncio.run(drive())
        assert [r.result for r in responses] == [0, 1, 2]
        assert driver.batches == [3]

    def test_distinct_ops_land_in_distinct_buckets(self):
        driver = _CountingDriver()
        batcher = MicroBatcher(max_batch=2, max_delay=60.0)

        async def drive():
            return await asyncio.gather(
                batcher.submit("e", driver, ServeRequest(op="recommend", subject=1)),
                batcher.submit("e", driver, ServeRequest(op="stats", subject=2)),
                batcher.submit("e", driver, ServeRequest(op="recommend", subject=3)),
                batcher.submit("e", driver, ServeRequest(op="stats", subject=4)),
            )

        responses = asyncio.run(drive())
        assert [r.result for r in responses] == [1, 2, 3, 4]
        assert sorted(driver.batches) == [2, 2]

    def test_deadline_expired_in_queue_resolves_504_without_dispatch(self):
        driver = _CountingDriver()
        clock = {"now": 10.0}
        batcher = MicroBatcher(
            max_batch=2, max_delay=60.0, clock=lambda: clock["now"]
        )

        async def drive():
            dead = batcher.submit(
                "e", driver, ServeRequest(op="recommend", subject=1, deadline=5.0)
            )
            live = batcher.submit(
                "e", driver, ServeRequest(op="recommend", subject=2, deadline=99.0)
            )
            return await asyncio.gather(dead, live)

        expired, served = asyncio.run(drive())
        assert expired.status == 504
        assert served.status == 200
        assert driver.batches == [1]  # only the live request was dispatched
        assert batcher.expired_in_queue == 1

    def test_drain_flushes_pending_buckets(self):
        driver = _CountingDriver()
        batcher = MicroBatcher(max_batch=100, max_delay=60.0)

        async def drive():
            task = asyncio.ensure_future(
                batcher.submit("e", driver, ServeRequest(op="recommend", subject=9))
            )
            await asyncio.sleep(0)  # let the submit enqueue
            assert batcher.depth == 1
            batcher.drain()
            return await task

        response = asyncio.run(drive())
        assert response.result == 9
        assert batcher.depth == 0
