"""The serve contract: typed dispatch every service and driver speaks."""

import pytest

from repro.core.service import (
    AutonomousService,
    ServeRequest,
    ServeResponse,
    ServiceError,
)
from repro.fabric.pipeline import PipelineDriver, TickContext


class Echo(AutonomousService):
    """Minimal service: recommend scales, observe records, boom raises."""

    service_name = "echo"

    def __init__(self) -> None:
        self.seen = []

    def observe(self, subject, weight=1):
        self.seen.append((subject, weight))
        return len(self.seen)

    def recommend(self, subject, scale=1):
        return subject * scale

    def report(self):
        return {"seen": len(self.seen)}

    def serve_boom(self, request):
        raise KeyError("missing state")


class EchoDriver(PipelineDriver):
    name = "echo"

    def __init__(self) -> None:
        self.service = Echo()

    def services(self):
        return [self.service]

    def observe(self, ctx: TickContext) -> None:
        self.service.observe(ctx.day)


class TestServiceServe:
    def test_dispatches_to_handler_with_subject_and_params(self):
        response = Echo().serve(
            ServeRequest(op="recommend", subject=3, params={"scale": 4})
        )
        assert response.status == 200
        assert response.ok
        assert response.result == 12
        assert response.served_by == "echo"
        assert response.op == "recommend"

    def test_observe_and_report_ops_use_default_handlers(self):
        service = Echo()
        assert service.serve(ServeRequest(op="observe", subject="t")).result == 1
        assert service.serve(ServeRequest(op="report")).result == {"seen": 1}

    def test_unknown_op_is_404_not_an_exception(self):
        response = Echo().serve(ServeRequest(op="teleport"))
        assert response.status == 404
        assert not response.ok
        assert "teleport" in response.error

    def test_handler_exception_is_500_with_original_exception(self):
        response = Echo().serve(ServeRequest(op="boom"))
        assert response.status == 500
        assert isinstance(response.exception, KeyError)
        assert "KeyError" in response.error

    def test_unwrap_reraises_the_original_exception(self):
        response = Echo().serve(ServeRequest(op="boom"))
        with pytest.raises(KeyError, match="missing state"):
            response.unwrap()

    def test_unwrap_without_exception_raises_service_error(self):
        response = ServeResponse(status=503, error="queue full")
        with pytest.raises(ServiceError, match="queue full") as exc_info:
            response.unwrap()
        assert exc_info.value.status == 503

    def test_unwrap_returns_result_on_success(self):
        assert Echo().serve(ServeRequest(op="recommend", subject=2)).unwrap() == 2

    def test_serve_many_default_is_order_preserving(self):
        responses = Echo().serve_many(
            [ServeRequest(op="recommend", subject=i) for i in range(5)]
        )
        assert [r.result for r in responses] == [0, 1, 2, 3, 4]


class TestDriverServe:
    def test_driver_routes_to_wrapped_service(self):
        driver = EchoDriver()
        response = driver.serve(ServeRequest(op="recommend", subject=5))
        assert response.status == 200
        assert response.result == 5

    def test_driver_404_names_the_driver(self):
        response = EchoDriver().serve(ServeRequest(op="nope"))
        assert response.status == 404
        assert "echo" in response.error

    def test_driver_serve_many_delegates_to_single_service(self):
        driver = EchoDriver()
        responses = driver.serve_many(
            [ServeRequest(op="recommend", subject=i) for i in range(3)]
        )
        assert [r.result for r in responses] == [0, 1, 2]

    def test_ticked_and_queried_paths_share_state(self):
        driver = EchoDriver()
        from repro.fabric.lifecycle import ModelLifecycle

        driver.observe(
            TickContext(day=0, tick=0, now=0.0, lifecycle=ModelLifecycle())
        )
        response = driver.serve(ServeRequest(op="report"))
        assert response.result == {"seen": 1}


class TestPeregrineStats:
    def test_stats_op_answers_from_the_repository(self):
        from repro.fabric.fleet import PeregrineDriver

        driver = PeregrineDriver(jobs_by_day={})
        response = driver.serve(ServeRequest(op="stats"))
        assert response.status == 200
        assert response.result == {"jobs": 0, "stats": {}}
        assert response.served_by == "peregrine"

    def test_unknown_op_still_404s(self):
        from repro.fabric.fleet import PeregrineDriver

        driver = PeregrineDriver(jobs_by_day={})
        assert driver.serve(ServeRequest(op="recommend")).status == 404
