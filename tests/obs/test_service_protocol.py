"""The common AutonomousService protocol across every core service."""

import numpy as np
import pytest

from repro.core import AutonomousService
from repro.core.service import deprecated_alias
from repro.core.doppler import SkuRecommender
from repro.core.feedback import FeedbackLoop
from repro.core.moneyball import MoneyballPolicy
from repro.core.seagull import SeagullService
from repro.core.steering import SteeringService
from repro.engine import DefaultCostModel, DefaultCardinalityEstimator, Optimizer
from repro.ml import LinearRegression, ModelRegistry
from repro.obs import ObservabilityRuntime
from repro.workloads import (
    ScopeWorkloadGenerator,
    UsagePopulationConfig,
    generate_customers,
    generate_population,
)


@pytest.fixture(scope="module")
def tenants():
    return generate_population(
        UsagePopulationConfig(n_tenants=12, n_days=42), rng=0
    )


@pytest.fixture(scope="module")
def workload():
    return ScopeWorkloadGenerator(rng=0).generate(n_days=1)


def _feedback_loop():
    registry = ModelRegistry(rng=0)
    rng = np.random.default_rng(0)
    x0 = rng.normal(size=(50, 1))
    y0 = 2 * x0[:, 0] + rng.normal(scale=0.1, size=50)
    version = registry.register("m", LinearRegression().fit(x0, y0))
    registry.promote("m", version)
    return FeedbackLoop(registry, "m", retrain=lambda x, y: LinearRegression().fit(x, y))


def _steering(workload):
    optimizer = Optimizer(workload.catalog)
    cost = DefaultCostModel(
        workload.catalog, DefaultCardinalityEstimator(workload.catalog)
    )
    return SteeringService(optimizer, lambda p: cost.cost(p).total, rng=0)


class TestConformance:
    def test_every_service_is_an_autonomous_service(self, workload):
        services = [
            _feedback_loop(),
            _steering(workload),
            MoneyballPolicy(),
            SeagullService(),
            SkuRecommender(rng=0),
        ]
        for service in services:
            assert isinstance(service, AutonomousService)
            for method in ("observe", "recommend", "report", "bind"):
                assert callable(getattr(service, method)), (service, method)
            assert service.service_name
            assert service.layer == "service"

    def test_service_names_unique(self, workload):
        names = {
            s.service_name
            for s in (
                _feedback_loop(),
                _steering(workload),
                MoneyballPolicy(),
                SeagullService(),
                SkuRecommender(rng=0),
            )
        }
        assert names == {"feedback", "steering", "moneyball", "seagull", "doppler"}

    def test_bind_returns_service_and_sets_runtime(self):
        obs = ObservabilityRuntime()
        service = MoneyballPolicy()
        assert service.obs is None
        assert service.bind(obs) is service
        assert service.obs is obs
        service.bind(None)
        assert service.obs is None

    def test_unbound_service_emits_nothing(self, tenants):
        service = MoneyballPolicy()
        for trace in tenants:
            service.observe(trace)
        report = service.report()
        assert report.points  # works fully uninstrumented

    def test_bound_service_produces_spans_and_events(self, tenants):
        obs = ObservabilityRuntime()
        service = MoneyballPolicy().bind(obs)
        for trace in tenants:
            service.observe(trace)
        service.report()
        assert any(s.name == "moneyball.report" for s in obs.tracer.spans)
        assert obs.events.filter(layer="service", source="moneyball")

    def test_abstract_base_rejects_partial_implementations(self):
        class Partial(AutonomousService):
            service_name = "partial"

            def observe(self):  # recommend/report missing
                pass

        with pytest.raises(TypeError):
            Partial()


class TestDeprecatedAliases:
    def test_steering_config_for_and_process(self, workload):
        service = _steering(workload)
        with pytest.warns(DeprecationWarning, match="config_for.*recommend"):
            assert service.config_for("T1") == service.recommend("T1")
        plan = workload.jobs[0].plan
        with pytest.warns(DeprecationWarning, match="process.*observe"):
            service.process("j1", plan)

    def test_seagull_choose(self, tenants):
        service = SeagullService()
        predictable = [t for t in tenants if t.is_predictable]
        service.observe(predictable[0])
        with pytest.warns(DeprecationWarning, match="choose.*recommend"):
            chosen = service.choose(predictable[0].tenant_id, day=30)
        assert chosen == service.recommend(predictable[0].tenant_id, day=30)

    def test_removed_aliases_are_gone(self):
        # Doppler fit / Moneyball evaluate / Feedback actions served
        # their one release as deprecated shims and are now removed.
        assert not hasattr(SkuRecommender(rng=0), "fit")
        assert not hasattr(MoneyballPolicy(), "evaluate")
        assert not hasattr(_feedback_loop(), "actions")

    def test_new_entry_points_do_not_warn(self, recwarn, tenants):
        service = SeagullService()
        service.observe([t for t in tenants if t.is_predictable][0])
        assert not [w for w in recwarn.list if w.category is DeprecationWarning]

    def test_decorator_records_replacement(self, workload):
        assert SteeringService.process.__deprecated_for__ == "observe"

    def test_decorator_on_custom_class(self):
        class Thing(AutonomousService):
            service_name = "thing"

            def observe(self):
                return "seen"

            def recommend(self):
                return None

            def report(self):
                return None

            @deprecated_alias("observe")
            def look(self):
                return self.observe()

        with pytest.warns(DeprecationWarning, match="Thing.look.*Thing.observe"):
            assert Thing().look() == "seen"
