"""ObservabilityRuntime: shared clock, incremental flush, rollups."""

import pytest

from repro.obs import ObservabilityRuntime
from repro.telemetry import Metric, TelemetryStore


class TestSharedClock:
    def test_spans_and_events_share_one_timeline(self):
        obs = ObservabilityRuntime()
        with obs.span("work", layer="engine"):
            event = obs.emit("engine", "executor", "tick")
        span = obs.tracer.spans[0]
        assert span.start <= event.timestamp <= span.end

    def test_emit_inside_span_links_span_id(self):
        obs = ObservabilityRuntime()
        with obs.span("work") as span:
            inside = obs.emit("engine", "x", "tick")
        outside = obs.emit("engine", "x", "tick")
        assert inside.span_id == span.span_id
        assert outside.span_id is None


class TestFlush:
    def test_flush_exports_spans_and_events(self):
        obs = ObservabilityRuntime()
        with obs.span("work", layer="engine"):
            obs.emit("engine", "x", "tick")
        written = obs.flush()
        assert written == 3  # wall + cpu + one event
        assert obs.query().metric(Metric.SPAN_SECONDS).count() == 1
        assert obs.query().metric(Metric.EVENT_COUNT).count() == 1

    def test_flush_is_incremental(self):
        obs = ObservabilityRuntime()
        with obs.span("first"):
            pass
        assert obs.flush() == 2
        assert obs.flush() == 0
        with obs.span("second"):
            pass
        obs.emit("engine", "x", "tick")
        assert obs.flush() == 3
        assert obs.query().metric(Metric.SPAN_SECONDS).count() == 2

    def test_open_span_at_flush_time_is_flushed_later(self):
        obs = ObservabilityRuntime()
        with obs.span("outer"):
            with obs.span("inner"):
                pass
            assert obs.flush() == 2  # inner only; outer still open
        assert obs.flush() == 2  # outer now

    def test_external_store_receives_exports(self):
        store = TelemetryStore()
        obs = ObservabilityRuntime(store=store)
        with obs.span("work"):
            pass
        obs.flush()
        assert obs.store is store
        assert obs.query().metric(Metric.SPAN_SECONDS).count() == 1


class TestRollup:
    def test_layer_rollup_served_from_store(self):
        obs = ObservabilityRuntime()
        with obs.span("a", layer="engine"):
            pass
        with obs.span("b", layer="infra"):
            obs.emit("infra", "des", "arrival")
        # Nothing flushed yet: rollup must be empty (store is the truth).
        assert obs.layer_rollup() == {}
        obs.flush()
        rollup = obs.layer_rollup()
        assert set(rollup) == {"engine", "infra"}
        assert rollup["engine"]["spans"] == 1
        assert rollup["infra"]["events"] == 1
        assert rollup["engine"]["wall_seconds"] > 0.0

    def test_render_contains_tree_and_rollup(self):
        obs = ObservabilityRuntime()
        with obs.span("scenario", layer="cli"):
            pass
        obs.flush()
        text = obs.render()
        assert "== span tree ==" in text
        assert "[cli] scenario" in text
        assert "== per-layer rollup ==" in text
        assert "cli" in text.split("== per-layer rollup ==")[1]

    def test_render_before_flush_points_at_flush(self):
        obs = ObservabilityRuntime()
        assert "(no spans)" in obs.render()
        assert "flush()" in obs.render()


class TestReplay:
    def test_replay_delegates_to_event_log(self):
        obs = ObservabilityRuntime()

        class Shape:
            def to_events(self):
                from repro.obs import ObsEvent

                return [ObsEvent(1.0, "service", "s", "k", value=4.0)]

        assert obs.replay(Shape()) == 1
        obs.flush()
        points = obs.query().metric(Metric.EVENT_COUNT).where(source="s").points()
        assert len(points) == 1
        assert points[0].value == pytest.approx(4.0)
