"""Acceptance: one traced workload -> engine -> service run, queryable
from the TelemetryStore through the standard Query layer."""

import pytest

from repro.core.steering import SteeringService
from repro.engine import (
    ClusterExecutor,
    DefaultCardinalityEstimator,
    DefaultCostModel,
    Optimizer,
    TrueCardinalityModel,
    compile_stages,
)
from repro.infra import EventQueue
from repro.obs import ObservabilityRuntime
from repro.telemetry import Metric
from repro.workloads import ScopeWorkloadGenerator


@pytest.fixture(scope="module")
def traced_run():
    obs = ObservabilityRuntime()
    with obs.span("scenario", layer="cli"):
        with obs.span("workload.generate", layer="workload"):
            workload = ScopeWorkloadGenerator(rng=0).generate(n_days=1)
        truth = TrueCardinalityModel(workload.catalog, seed=0)
        est_cost = DefaultCostModel(
            workload.catalog, DefaultCardinalityEstimator(workload.catalog)
        )
        true_cost = DefaultCostModel(workload.catalog, truth)
        optimizer = Optimizer(workload.catalog, obs=obs)
        executor = ClusterExecutor(rng=0, obs=obs)
        steering = SteeringService(
            optimizer, lambda p: true_cost.cost(p).total, rng=0
        )
        steering.bind(obs)
        queue = EventQueue(obs=obs)

        def arrival(job):
            def run():
                optimized = optimizer.optimize(job.plan).plan
                graph = compile_stages(optimized, est_cost, truth=true_cost)
                executor.run(graph)
                steering.observe(job.job_id, job.plan)

            return run

        jobs = workload.jobs[:4]
        for i, job in enumerate(jobs):
            queue.schedule(float(i), arrival(job), label="job_arrival")
        queue.run()
        obs.replay(steering.report())
    obs.flush()
    return obs, jobs


class TestSpanTree:
    def test_all_layers_present(self, traced_run):
        obs, _ = traced_run
        layers = {s.layer for s in obs.tracer.spans}
        assert {"cli", "workload", "infra", "engine", "service"} <= layers

    def test_nesting_crosses_layers(self, traced_run):
        obs, _ = traced_run
        by_id = {s.span_id: s for s in obs.tracer.spans}
        executor_spans = [
            s for s in obs.tracer.spans if s.name == "engine.executor.run"
        ]
        assert executor_spans
        # Executor runs inside the DES run span: engine nests under infra.
        for span in executor_spans:
            assert by_id[span.parent_id].name == "infra.des.run"

    def test_every_job_produced_an_executor_span(self, traced_run):
        obs, jobs = traced_run
        runs = [s for s in obs.tracer.spans if s.name == "engine.executor.run"]
        assert len(runs) == len(jobs)


class TestQueryability:
    def test_span_wall_time_queryable_per_layer(self, traced_run):
        obs, _ = traced_run
        for layer in ("infra", "engine", "service", "workload"):
            count = (
                obs.query().metric(Metric.SPAN_SECONDS).where(layer=layer).count()
            )
            assert count > 0, layer

    def test_cpu_seconds_tracked_alongside_wall(self, traced_run):
        obs, _ = traced_run
        wall = obs.query().metric(Metric.SPAN_SECONDS).count()
        cpu = obs.query().metric(Metric.SPAN_CPU_SECONDS).count()
        assert wall == cpu > 0

    def test_simulated_events_queryable(self, traced_run):
        obs, jobs = traced_run
        arrivals = (
            obs.query()
            .metric(Metric.EVENT_COUNT)
            .where(layer="infra", source="des", kind="job_arrival")
            .count()
        )
        assert arrivals == len(jobs)
        stage_ts, stage_values = (
            obs.query()
            .metric(Metric.EVENT_COUNT)
            .where(layer="engine", source="executor", kind="stage")
            .series()
        )
        assert stage_ts.size > 0
        assert (stage_values > 0).all()

    def test_rollup_covers_all_layers(self, traced_run):
        obs, _ = traced_run
        rollup = obs.layer_rollup()
        assert {"cli", "workload", "infra", "engine", "service"} <= set(rollup)
        for row in rollup.values():
            assert row["wall_seconds"] >= 0.0

    def test_time_windowing_on_simulated_events(self, traced_run):
        obs, jobs = traced_run
        # Arrivals are scheduled at t = 0..n-1 in simulated time.
        early = (
            obs.query()
            .metric(Metric.EVENT_COUNT)
            .where(kind="job_arrival")
            .between(-0.5, 1.5)
            .count()
        )
        assert early == 2
