"""Exporters: spans/events round-trip into the TelemetryStore."""

import pytest

from repro.obs import EventLog, Tracer, export_events, export_spans
from repro.telemetry import Metric, Query, TelemetryStore


class TestExportSpans:
    def _traced(self):
        tracer = Tracer()
        with tracer.span("outer", layer="cli"):
            with tracer.span("optimize", layer="engine"):
                pass
            with tracer.span("optimize", layer="engine"):
                pass
        return tracer

    def test_each_span_writes_wall_and_cpu_points(self):
        tracer = self._traced()
        store = TelemetryStore()
        written = export_spans(tracer.spans, store)
        assert written == 2 * len(tracer.spans)
        assert Query(store).metric(Metric.SPAN_SECONDS).count() == 3
        assert Query(store).metric(Metric.SPAN_CPU_SECONDS).count() == 3

    def test_round_trip_through_query(self):
        tracer = self._traced()
        store = TelemetryStore()
        export_spans(tracer.spans, store)
        engine = (
            Query(store)
            .metric(Metric.SPAN_SECONDS)
            .where(layer="engine", name="optimize")
            .points()
        )
        assert len(engine) == 2
        expected = sorted(
            s.wall_seconds for s in tracer.spans if s.name == "optimize"
        )
        assert sorted(p.value for p in engine) == pytest.approx(expected)
        assert all(p.dimension("status") == "ok" for p in engine)

    def test_open_spans_skipped(self):
        tracer = Tracer()
        store = TelemetryStore()
        with tracer.span("open_one"):
            # Only the stack holds it; nothing finished yet.
            assert export_spans(tracer._stack, store) == 0
        assert export_spans(tracer._stack, store) == 0
        assert export_spans(tracer.spans, store) == 2

    def test_error_spans_exported_with_status_dimension(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("fails", layer="engine"):
                raise ValueError("x")
        store = TelemetryStore()
        export_spans(tracer.spans, store)
        errors = (
            Query(store).metric(Metric.SPAN_SECONDS).where(status="error").points()
        )
        assert len(errors) == 1
        assert errors[0].dimension("name") == "fails"

    def test_empty_input_writes_nothing(self):
        store = TelemetryStore()
        assert export_spans([], store) == 0
        assert export_events([], store) == 0


class TestExportEvents:
    def test_events_round_trip_with_dimensions(self):
        log = EventLog()
        log.emit("engine", "executor", "stage", value=2.0, timestamp=1.0)
        log.emit("engine", "executor", "stage", value=3.0, timestamp=0.5)
        log.emit("service", "steering", "job", timestamp=2.0)
        store = TelemetryStore()
        assert export_events(log.events, store) == 3
        stages = (
            Query(store)
            .metric(Metric.EVENT_COUNT)
            .where(layer="engine", source="executor", kind="stage")
            .series()
        )
        timestamps, values = stages
        # Store sorts lazily on read; out-of-order appends come back ordered.
        assert list(timestamps) == [0.5, 1.0]
        assert list(values) == [3.0, 2.0]

    def test_metric_alias_resolves(self):
        log = EventLog()
        log.emit("infra", "des", "arrival", timestamp=0.0)
        store = TelemetryStore()
        export_events(log.events, store)
        assert Query(store).metric("otel.events").count() == 1
