"""Tracer behaviour: nesting, layers, timing, exception safety."""

import pytest

from repro.obs import EpochClock, Tracer


class TestSpanBasics:
    def test_span_records_name_layer_and_attributes(self):
        tracer = Tracer()
        with tracer.span("optimize", layer="engine", template="T1") as span:
            span.attributes["passes"] = 3
        assert len(tracer.spans) == 1
        done = tracer.spans[0]
        assert done.name == "optimize"
        assert done.layer == "engine"
        assert done.attributes == {"template": "T1", "passes": 3}
        assert done.status == "ok"

    def test_wall_and_cpu_time_measured(self):
        tracer = Tracer()
        with tracer.span("work"):
            sum(range(20_000))
        span = tracer.spans[0]
        assert span.wall_seconds > 0.0
        assert span.cpu_seconds > 0.0
        assert span.end == pytest.approx(span.start + span.wall_seconds)

    def test_epoch_clock_starts_near_zero(self):
        clock = EpochClock()
        first = clock()
        assert 0.0 <= first < 1.0
        assert clock() >= first


class TestNesting:
    def test_children_link_to_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
            with tracer.span("inner2") as inner2:
                assert inner2.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_current_tracks_innermost_open_span(self):
        tracer = Tracer()
        assert tracer.current is None
        with tracer.span("outer") as outer:
            assert tracer.current is outer
            with tracer.span("inner") as inner:
                assert tracer.current is inner
            assert tracer.current is outer
        assert tracer.current is None

    def test_child_inherits_parent_layer(self):
        tracer = Tracer()
        with tracer.span("outer", layer="engine"):
            with tracer.span("inner"):          # no explicit layer
                pass
            with tracer.span("other", layer="service"):
                pass
        layers = {s.name: s.layer for s in tracer.spans}
        assert layers == {"inner": "engine", "other": "service", "outer": "engine"}

    def test_span_tree_structure(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("a"):
                with tracer.span("a1"):
                    pass
            with tracer.span("b"):
                pass
        roots = tracer.span_tree()
        assert len(roots) == 1
        root, children = roots[0]
        assert root.name == "root"
        assert [c[0].name for c in children] == ["a", "b"]
        assert [g[0].name for g in children[0][1]] == ["a1"]

    def test_open_spans_render_as_open(self):
        tracer = Tracer()
        with tracer.span("running"):
            text = tracer.render_tree()
        assert "running  (open)" in text

    def test_render_tree_indents_and_labels(self):
        tracer = Tracer()
        with tracer.span("root", layer="cli"):
            with tracer.span("child", layer="engine"):
                pass
        text = tracer.render_tree()
        lines = text.splitlines()
        assert lines[0].startswith("[cli] root")
        assert lines[1].startswith("  [engine] child")


class TestExceptionSafety:
    def test_exception_closes_span_with_error_status(self):
        tracer = Tracer()
        with pytest.raises(ValueError, match="boom"):
            with tracer.span("fails"):
                raise ValueError("boom")
        span = tracer.spans[0]
        assert span.status == "error"
        assert span.error == "ValueError: boom"
        assert span.finished
        assert span.wall_seconds >= 0.0

    def test_exception_pops_stack(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("inner failure")
        assert tracer.current is None
        statuses = {s.name: s.status for s in tracer.spans}
        assert statuses == {"inner": "error", "outer": "error"}

    def test_tracer_usable_after_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("bad"):
                raise ValueError()
        with tracer.span("good"):
            pass
        assert tracer.spans[-1].status == "ok"
        assert tracer.spans[-1].parent_id is None

    def test_error_marker_in_rendered_tree(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("fails"):
                raise ValueError("boom")
        assert "!! ValueError: boom" in tracer.render_tree()
