"""EventLog emission and replay of every converged report shape."""

import numpy as np
import pytest

from repro.core.feedback.loop import FeedbackReport, LoopEvent
from repro.core.steering.service import SteeringOutcome, SteeringReport
from repro.engine import (
    ClusterExecutor,
    DefaultCardinalityEstimator,
    DefaultCostModel,
    RuleConfig,
    compile_stages,
)
from repro.infra.des import Event
from repro.obs import EventLog, ObsEvent
from repro.obs.events import freeze_attributes


class TestEmit:
    def test_emit_defaults(self):
        log = EventLog()
        event = log.emit("engine", "executor", "stage")
        assert event.value == 1.0
        assert event.timestamp > 0.0
        assert len(log) == 1

    def test_explicit_timestamp_and_attributes(self):
        log = EventLog()
        event = log.emit("infra", "des", "arrival", value=2.5, timestamp=17.0, job="j1")
        assert event.timestamp == 17.0
        assert event.value == 2.5
        assert event.attribute("job") == "j1"
        assert event.attribute("missing") is None

    def test_clock_injection(self):
        ticks = iter([5.0, 6.0])
        log = EventLog(clock=lambda: next(ticks))
        assert log.emit("a", "b", "c").timestamp == 5.0
        assert log.emit("a", "b", "c").timestamp == 6.0

    def test_freeze_attributes_sorted_and_stringified(self):
        frozen = freeze_attributes({"b": 2, "a": True})
        assert frozen == (("a", "True"), ("b", "2"))
        assert freeze_attributes(None) == ()


class TestFilterAndCounts:
    def _log(self):
        log = EventLog()
        log.emit("engine", "executor", "stage", timestamp=1.0)
        log.emit("engine", "optimizer", "pass", timestamp=2.0)
        log.emit("service", "steering", "job", timestamp=3.0)
        return log

    def test_filter_by_layer_source_kind(self):
        log = self._log()
        assert len(log.filter(layer="engine")) == 2
        assert len(log.filter(source="steering")) == 1
        assert len(log.filter(layer="engine", kind="pass")) == 1

    def test_counts_by(self):
        log = self._log()
        assert log.counts_by("layer") == {"engine": 2, "service": 1}
        with pytest.raises(ValueError):
            log.counts_by("timestamp")


class TestReplayShapes:
    """All four pre-existing report shapes replay through one method."""

    def test_replay_des_event(self):
        log = EventLog()
        assert log.replay(Event(3.5, 0, lambda: None, label="arrival")) == 1
        event = log.events[0]
        assert (event.layer, event.source, event.kind) == ("infra", "des", "arrival")
        assert event.timestamp == 3.5

    def test_replay_loop_events(self):
        log = EventLog()
        events = [LoopEvent(5, "drift"), LoopEvent(9, "flight", version=2)]
        assert log.replay(events) == 2
        assert [e.kind for e in log.events] == ["drift", "flight"]
        assert log.events[1].attribute("version") == "2"
        assert log.events[1].timestamp == 9.0

    def test_replay_feedback_report(self):
        report = FeedbackReport(
            name="m", steps=12, events=[LoopEvent(3, "drift"), LoopEvent(7, "promote", 1)]
        )
        log = EventLog()
        assert log.replay(report) == 2
        assert log.counts_by("kind") == {"drift": 1, "promote": 1}

    def test_replay_steering_report(self):
        outcome = SteeringOutcome(
            job_id="j1",
            template="T1",
            config=RuleConfig.all_on(),
            default_cost=10.0,
            steered_cost=8.0,
            experimented=True,
        )
        report = SteeringReport(outcomes=[outcome], adoptions=1, rollbacks=0)
        log = EventLog()
        assert log.replay(report) == 3  # 1 job + adoptions + rollbacks
        job = log.filter(kind="job")[0]
        assert job.value == pytest.approx(0.2)
        assert job.attribute("template") == "T1"
        summary = {e.kind: e.value for e in log.events if e.kind != "job"}
        assert summary == {"adoptions": 1.0, "rollbacks": 0.0}

    def test_replay_execution_report(self, small_graph):
        report = ClusterExecutor(rng=0).run(small_graph)
        log = EventLog()
        added = log.replay(report)
        assert added == len(report.runs) + 1
        stages = log.filter(kind="stage")
        assert len(stages) == len(report.runs)
        # Simulated, not wall-clock, timestamps.
        assert [e.timestamp for e in stages] == [r.start for r in report.runs]
        assert [e.value for e in stages] == [
            pytest.approx(r.duration) for r in report.runs
        ]
        job = log.filter(kind="job")[0]
        assert job.value == pytest.approx(report.runtime)
        assert job.attribute("stages") == str(len(report.runs))

    def test_replay_single_obs_event_and_bad_input(self):
        log = EventLog()
        assert log.replay(ObsEvent(1.0, "a", "b", "c")) == 1
        with pytest.raises(TypeError, match="cannot replay"):
            log.replay(42)


@pytest.fixture
def small_graph():
    from repro.workloads import ScopeWorkloadGenerator

    workload = ScopeWorkloadGenerator(rng=0).generate(n_days=1)
    catalog = workload.catalog
    cost = DefaultCostModel(catalog, DefaultCardinalityEstimator(catalog))
    plan = next(j.plan for j in workload.jobs if j.plan.size >= 4)
    return compile_stages(plan, cost)


def test_replay_preserves_numpy_value_types(small_graph):
    """Replayed values coerce cleanly to float columns for export."""
    report = ClusterExecutor(rng=0).run(small_graph)
    log = EventLog()
    log.replay(report)
    values = np.array([e.value for e in log.events])
    assert values.dtype == np.float64
