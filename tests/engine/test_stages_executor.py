"""Tests for stage compilation and the cluster executor."""

import numpy as np
import pytest

from repro.engine import (
    Aggregate,
    ClusterExecutor,
    DefaultCardinalityEstimator,
    DefaultCostModel,
    Filter,
    Join,
    Predicate,
    Scan,
    Stage,
    StageGraph,
    compile_stages,
)


@pytest.fixture
def cost_model(catalog):
    return DefaultCostModel(catalog, DefaultCardinalityEstimator(catalog))


@pytest.fixture
def plan():
    join = Join(Scan("fact"), Scan("dim"), "key", "key")
    return Aggregate(
        Filter(join, (Predicate("a0", "<", 100.0),)), ("a1",)
    )


@pytest.fixture
def graph(plan, cost_model):
    return compile_stages(plan, cost_model)


class TestCompileStages:
    def test_one_stage_per_node(self, plan, graph):
        assert len(graph) == plan.size

    def test_dependencies_follow_plan_edges(self, graph):
        # Scans have no deps; the sink depends on exactly one stage.
        scans = [s for s in graph.stages if s.operator == "Scan"]
        assert all(not s.depends_on for s in scans)
        assert len(graph.sink.depends_on) == 1

    def test_sink_is_root_operator(self, graph):
        assert graph.sink.operator == "Aggregate"

    def test_task_count_scales_with_rows(self, graph):
        big = max(graph.stages, key=lambda s: s.output_rows)
        small = min(graph.stages, key=lambda s: s.output_rows)
        assert big.n_tasks >= small.n_tasks
        assert all(1 <= s.n_tasks <= 64 for s in graph.stages)

    def test_durations_positive(self, graph):
        assert all(s.duration() > 0 for s in graph.stages)

    def test_critical_path_at_most_total_work(self, graph):
        assert graph.critical_path_seconds() <= graph.total_work_seconds() + 1e-9

    def test_networkx_export(self, graph):
        g = graph.to_networkx()
        assert g.number_of_nodes() == len(graph)
        import networkx as nx

        assert nx.is_directed_acyclic_graph(g)

    def test_ancestors(self, graph):
        assert graph.ancestors(graph.sink.stage_id) == set(
            range(len(graph) - 1)
        )


class TestStageGraphValidation:
    def test_non_dense_ids_rejected(self):
        with pytest.raises(ValueError, match="dense"):
            StageGraph(
                [Stage(1, "Scan", (), 1.0, 1.0, 1.0, 1)]
            )

    def test_forward_dependency_rejected(self):
        with pytest.raises(ValueError, match="earlier"):
            StageGraph(
                [
                    Stage(0, "Scan", (1,), 1.0, 1.0, 1.0, 1),
                    Stage(1, "Filter", (), 1.0, 1.0, 1.0, 1),
                ]
            )


class TestExecutor:
    def test_deterministic_given_seed(self, graph):
        a = ClusterExecutor(n_machines=8, rng=3).run(graph)
        b = ClusterExecutor(n_machines=8, rng=3).run(graph)
        assert a.runtime == b.runtime
        assert a.peak_temp_per_machine == b.peak_temp_per_machine

    def test_runtime_close_to_critical_path(self, graph):
        report = ClusterExecutor(n_machines=8, noise=0.0, rng=0).run(graph)
        assert report.runtime == pytest.approx(graph.critical_path_seconds())

    def test_stage_runs_respect_dependencies(self, graph):
        report = ClusterExecutor(rng=0).run(graph)
        for stage in graph.stages:
            run = report.run_of(stage.stage_id)
            for dep in stage.depends_on:
                assert report.run_of(dep).end <= run.start + 1e-9

    def test_sink_output_not_counted_as_temp(self, cost_model):
        single = compile_stages(Scan("fact"), cost_model)
        report = ClusterExecutor(rng=0).run(single)
        assert report.peak_temp_bytes == 0.0

    def test_placement_skew_creates_hotspots(self, graph):
        report = ClusterExecutor(n_machines=16, placement_skew=2.0, rng=1).run(graph)
        peaks = np.array(list(report.peak_temp_per_machine.values()))
        # The hottest machine should hold far more than the mean.
        assert peaks.max() > 2.0 * peaks.mean()

    def test_checkpointing_reduces_peak_temp(self, graph):
        ex = ClusterExecutor(n_machines=8, rng=2)
        no_ckpt = ex2 = ClusterExecutor(n_machines=8, rng=2).run(graph)
        all_ckpt = ClusterExecutor(n_machines=8, rng=2).run(
            graph, checkpoints={s.stage_id for s in graph.stages[:-1]}
        )
        assert all_ckpt.peak_temp_bytes <= no_ckpt.peak_temp_bytes

    def test_invalid_constructor_args(self):
        with pytest.raises(ValueError):
            ClusterExecutor(n_machines=0)
        with pytest.raises(ValueError):
            ClusterExecutor(noise=-1)


class TestRestart:
    def test_no_checkpoints_restarts_from_scratch(self, graph):
        ex = ClusterExecutor(rng=0)
        report = ex.run(graph)
        restart = ex.restart_work_seconds(graph, report, report.runtime * 0.9)
        assert restart == pytest.approx(report.runtime)

    def test_full_checkpointing_resumes_quickly(self, graph):
        ex = ClusterExecutor(rng=0)
        ckpts = {s.stage_id for s in graph.stages[:-1]}
        report = ex.run(graph, checkpoints=ckpts)
        late = report.runtime * 0.99
        restart = ex.restart_work_seconds(graph, report, late)
        assert restart < report.runtime

    def test_failure_before_start_replays_everything(self, graph):
        ex = ClusterExecutor(rng=0)
        report = ex.run(graph, checkpoints={0})
        restart = ex.restart_work_seconds(graph, report, failure_time=0.0)
        # Restart replays the full critical path; the one-off checkpoint
        # coordination overhead in `runtime` is not part of the replay.
        assert restart == pytest.approx(
            report.runtime - ex.checkpoint_overhead_seconds
        )

    def test_checkpoint_monotonicity(self, graph):
        # More checkpoints can never make restart slower.
        ex = ClusterExecutor(rng=0)
        all_ids = [s.stage_id for s in graph.stages[:-1]]
        report_full = ex.run(graph, checkpoints=set(all_ids))
        t = report_full.runtime * 0.8
        restarts = []
        for k in range(len(all_ids) + 1):
            report = ClusterExecutor(rng=0).run(
                graph, checkpoints=set(all_ids[:k])
            )
            restarts.append(ex.restart_work_seconds(graph, report, t))
        assert all(b <= a + 1e-9 for a, b in zip(restarts, restarts[1:]))
