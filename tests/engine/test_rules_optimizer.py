"""Tests for rewrite rules, rule configs, and the optimizer."""

import pytest

from repro.engine import (
    ALL_RULES,
    Aggregate,
    DefaultCardinalityEstimator,
    Filter,
    Join,
    Optimizer,
    Predicate,
    Project,
    RuleConfig,
    Scan,
    Union,
)
from repro.engine.rules import RuleContext


@pytest.fixture
def ctx(catalog):
    return RuleContext(catalog, DefaultCardinalityEstimator(catalog))


def rule(name):
    for r in ALL_RULES:
        if r.name == name:
            return r
    raise KeyError(name)


class TestIndividualRules:
    def test_filter_merge(self, ctx):
        inner = Filter(Scan("fact"), (Predicate("a0", "<", 1.0),))
        outer = Filter(inner, (Predicate("a1", ">", 2.0),))
        merged = rule("FilterMerge").apply(outer, ctx)
        assert isinstance(merged, Filter)
        assert not isinstance(merged.child, Filter)
        assert len(merged.predicates) == 2

    def test_dedupe_predicates(self, ctx):
        p = Predicate("a0", "=", 1.0)
        expr = Filter(Scan("fact"), (p, p))
        out = rule("DedupePredicates").apply(expr, ctx)
        assert out.predicates == (p,)

    def test_push_filter_below_join_routes_by_ownership(self, ctx):
        join = Join(Scan("fact"), Scan("dim"), "key", "key")
        expr = Filter(
            join, (Predicate("a0", "<", 1.0), Predicate("d0", ">", 2.0))
        )
        out = rule("PushFilterBelowJoin").apply(expr, ctx)
        assert isinstance(out, Join)
        assert isinstance(out.left, Filter) and out.left.predicates[0].column == "a0"
        assert isinstance(out.right, Filter) and out.right.predicates[0].column == "d0"

    def test_push_filter_below_join_keeps_unowned_predicates(self, ctx):
        join = Join(Scan("fact"), Scan("dim"), "key", "key")
        expr = Filter(join, (Predicate("mystery", "<", 1.0), Predicate("a0", "=", 2.0)))
        out = rule("PushFilterBelowJoin").apply(expr, ctx)
        assert isinstance(out, Filter)  # unowned predicate stays above
        assert out.predicates[0].column == "mystery"

    def test_push_filter_below_union(self, ctx):
        expr = Filter(
            Union(Scan("fact"), Scan("dim")), (Predicate("a0", "<", 1.0),)
        )
        out = rule("PushFilterBelowUnion").apply(expr, ctx)
        assert isinstance(out, Union)
        assert isinstance(out.left, Filter) and isinstance(out.right, Filter)

    def test_push_filter_below_aggregate_only_groupby_columns(self, ctx):
        agg = Aggregate(Scan("fact"), ("a0",))
        expr = Filter(agg, (Predicate("a0", "=", 1.0), Predicate("a1", "=", 2.0)))
        out = rule("PushFilterBelowAggregate").apply(expr, ctx)
        # a0 (group key) moves below; a1 (aggregated away) stays above.
        assert isinstance(out, Filter) and out.predicates[0].column == "a1"
        assert isinstance(out.child, Aggregate)
        assert isinstance(out.child.child, Filter)
        assert out.child.child.predicates[0].column == "a0"

    def test_project_merge(self, ctx):
        expr = Project(Project(Scan("fact"), ("a0", "a1")), ("a0",))
        out = rule("ProjectMerge").apply(expr, ctx)
        assert out == Project(Scan("fact"), ("a0",))

    def test_projection_pushdown_keeps_join_keys(self, ctx):
        expr = Project(Join(Scan("fact"), Scan("dim"), "key", "key"), ("a0", "d0"))
        out = rule("ProjectionPushdown").apply(expr, ctx)
        assert isinstance(out, Project)
        join = out.child
        assert isinstance(join.left, Project) and "key" in join.left.columns
        assert isinstance(join.right, Project) and "key" in join.right.columns

    def test_join_commute_moves_small_side_left(self, ctx):
        join = Join(Scan("fact"), Scan("dim"), "key", "key")
        out = rule("JoinCommute").apply(join, ctx)
        assert out.left == Scan("dim")  # dim (10k) < fact (1M)

    def test_join_commute_noop_when_already_ordered(self, ctx):
        join = Join(Scan("dim"), Scan("fact"), "key", "key")
        assert rule("JoinCommute").apply(join, ctx) == join

    def test_early_aggregation_applies_when_reducing(self, ctx):
        join = Join(Scan("fact"), Scan("dim"), "key", "key")
        expr = Aggregate(join, ("a1",))
        out = rule("EarlyAggregation").apply(expr, ctx)
        assert isinstance(out.child.left, Aggregate)
        # Partial aggregate groups by original keys plus the join key.
        assert set(out.child.left.group_by) == {"a1", "key"}

    def test_aggregate_below_union(self, ctx):
        expr = Aggregate(Union(Scan("fact"), Scan("dim")), ("a0",))
        out = rule("AggregateBelowUnion").apply(expr, ctx)
        assert isinstance(out.child.left, Aggregate)
        assert isinstance(out.child.right, Aggregate)

    def test_rules_are_idempotent_on_their_output(self, ctx):
        # Applying the same rule to its own output must not grow the plan.
        join = Join(Scan("fact"), Scan("dim"), "key", "key")
        expr = Aggregate(join, ("a1",))
        r = rule("EarlyAggregation")
        once = r.apply(expr, ctx)
        twice = r.apply(once, ctx)
        assert once == twice


class TestRuleConfig:
    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            RuleConfig((True,))

    def test_flip_changes_one_bit(self):
        cfg = RuleConfig.all_on().flip(3)
        assert not cfg.enabled(3)
        assert cfg.hamming(RuleConfig.all_on()) == 1

    def test_from_disabled(self):
        cfg = RuleConfig.from_disabled({2, 5})
        assert cfg.disabled_ids() == (2, 5)

    def test_all_off_disables_everything(self):
        assert len(RuleConfig.all_off().disabled_ids()) == len(ALL_RULES)


class TestOptimizer:
    def _plan(self):
        join = Join(Scan("fact"), Scan("dim"), "key", "key")
        return Filter(join, (Predicate("a0", "<", 100.0), Predicate("d0", ">", 1.0)))

    def test_all_off_returns_input_unchanged(self, catalog):
        opt = Optimizer(catalog)
        result = opt.optimize(self._plan(), RuleConfig.all_off())
        assert result.plan == self._plan()

    def test_all_on_improves_estimated_cost(self, catalog):
        opt = Optimizer(catalog)
        baseline = opt.optimize(self._plan(), RuleConfig.all_off())
        optimized = opt.optimize(self._plan(), RuleConfig.all_on())
        assert optimized.estimated_cost.total < baseline.estimated_cost.total

    def test_optimization_reaches_fixpoint(self, catalog):
        opt = Optimizer(catalog)
        result = opt.optimize(self._plan())
        again = opt.optimize(result.plan)
        assert again.plan == result.plan

    def test_default_config_is_all_on(self, catalog):
        opt = Optimizer(catalog)
        assert opt.optimize(self._plan()).config == RuleConfig.all_on()

    def test_learned_cardinality_changes_plan_choice(self, catalog):
        # Swapping the cardinality model must be possible without touching
        # the optimizer (the externalization seam).
        class ConstantModel:
            def estimate(self, expr):
                return 42.0

        opt = Optimizer(catalog, cardinality=ConstantModel())
        result = opt.optimize(self._plan())
        assert result.estimated_rows == 42.0

    def test_invalid_max_passes(self, catalog):
        with pytest.raises(ValueError):
            Optimizer(catalog, max_passes=0)

    def test_filters_end_up_below_join(self, catalog):
        opt = Optimizer(catalog)
        plan = opt.optimize(self._plan()).plan

        def top_is_filter_over_join(p):
            return isinstance(p, Filter) and isinstance(p.child, Join)

        assert not top_is_filter_over_join(plan)
