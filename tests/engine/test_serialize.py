"""Tests for cross-engine plan serialization (Direction 2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    Aggregate,
    Filter,
    Join,
    Predicate,
    Project,
    Scan,
    Union,
)
from repro.engine.serialize import (
    PlanFormatError,
    deserialize,
    explain,
    from_json,
    serialize,
    to_json,
)


def sample_plan():
    join = Join(
        Filter(Scan("fact"), (Predicate("a0", "<=", 5.5),)),
        Scan("dim"),
        "key",
        "key",
    )
    return Aggregate(Project(join, ("a0", "key")), ("a0",))


class TestRoundTrip:
    def test_exact_round_trip(self):
        plan = sample_plan()
        assert deserialize(serialize(plan)) == plan

    def test_json_round_trip(self):
        plan = sample_plan()
        assert from_json(to_json(plan)) == plan

    def test_union_round_trip(self):
        plan = Union(Scan("a"), Scan("b"))
        assert deserialize(serialize(plan)) == plan

    def test_json_is_deterministic(self):
        assert to_json(sample_plan()) == to_json(sample_plan())

    @settings(max_examples=30, deadline=None)
    @given(
        value=st.floats(-1e6, 1e6, allow_nan=False),
        op=st.sampled_from(["<", "<=", ">", ">=", "=", "!="]),
        table=st.text(
            alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=12
        ),
    )
    def test_property_filter_round_trip(self, value, op, table):
        plan = Filter(Scan(table), (Predicate("c", op, value),))
        assert from_json(to_json(plan)) == plan


class TestValidation:
    def test_wrong_version_rejected(self):
        payload = serialize(sample_plan())
        payload["version"] = 99
        with pytest.raises(PlanFormatError, match="version"):
            deserialize(payload)

    def test_missing_root_rejected(self):
        with pytest.raises(PlanFormatError, match="root"):
            deserialize({"version": 1})

    def test_unknown_operator_rejected(self):
        with pytest.raises(PlanFormatError, match="operator"):
            deserialize({"version": 1, "root": {"op": "teleport"}})

    def test_missing_field_rejected(self):
        with pytest.raises(PlanFormatError, match="missing required"):
            deserialize({"version": 1, "root": {"op": "scan"}})

    def test_empty_predicates_rejected(self):
        root = {
            "op": "filter",
            "input": {"op": "scan", "table": "t"},
            "predicates": [],
        }
        with pytest.raises(PlanFormatError, match="non-empty"):
            deserialize({"version": 1, "root": root})

    def test_invalid_json_rejected(self):
        with pytest.raises(PlanFormatError, match="JSON"):
            from_json("{not json")

    def test_non_dict_payload_rejected(self):
        with pytest.raises(PlanFormatError):
            deserialize([1, 2, 3])


class TestExplain:
    def test_explain_lists_every_operator(self):
        text = explain(sample_plan())
        for op in ("Aggregate", "Project", "Join", "Filter", "Scan"):
            assert op in text

    def test_explain_indents_children(self):
        lines = explain(sample_plan()).splitlines()
        assert lines[0].startswith("Aggregate")
        assert lines[1].startswith("  Project")
