"""Shared fixtures for engine tests: a small deterministic catalog."""

import pytest

from repro.engine import Catalog, ColumnStats, TableDef


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.add(
        TableDef(
            "fact",
            n_rows=1_000_000,
            columns=(
                ColumnStats("key", distinct=10_000),
                ColumnStats("a0", distinct=100, low=0, high=1000, skew=1.0),
                ColumnStats("a1", distinct=50, low=0, high=100, skew=0.0),
            ),
            row_bytes=200,
        )
    )
    cat.add(
        TableDef(
            "dim",
            n_rows=10_000,
            columns=(
                ColumnStats("key", distinct=10_000),
                ColumnStats("d0", distinct=20, low=0, high=100),
            ),
            row_bytes=80,
        )
    )
    return cat
