"""Tests for strict and template signatures."""

from repro.engine import (
    Filter,
    Join,
    Predicate,
    Scan,
    signature,
    template_signature,
)
from repro.engine.signatures import enumerate_signatures


def filtered(value):
    return Filter(Scan("t"), (Predicate("a", "<=", value),))


class TestStrictSignature:
    def test_identical_plans_match(self):
        assert signature(filtered(5.0)) == signature(filtered(5.0))

    def test_different_literals_differ(self):
        assert signature(filtered(5.0)) != signature(filtered(6.0))

    def test_different_tables_differ(self):
        a = Filter(Scan("t"), (Predicate("a", "=", 1.0),))
        b = Filter(Scan("u"), (Predicate("a", "=", 1.0),))
        assert signature(a) != signature(b)

    def test_child_order_matters_for_join(self):
        j1 = Join(Scan("a"), Scan("b"), "k", "k")
        j2 = Join(Scan("b"), Scan("a"), "k", "k")
        assert signature(j1) != signature(j2)

    def test_operator_type_matters(self):
        from repro.engine import Aggregate, Project

        p = Project(Scan("t"), ("a",))
        a = Aggregate(Scan("t"), ("a",))
        assert signature(p) != signature(a)


class TestTemplateSignature:
    def test_literal_changes_collapse(self):
        # The SCOPE recurring-job pattern: same script, new predicate value.
        assert template_signature(filtered(5.0)) == template_signature(filtered(99.0))

    def test_different_columns_do_not_collapse(self):
        a = Filter(Scan("t"), (Predicate("a", "=", 1.0),))
        b = Filter(Scan("t"), (Predicate("b", "=", 1.0),))
        assert template_signature(a) != template_signature(b)

    def test_different_ops_do_not_collapse(self):
        a = Filter(Scan("t"), (Predicate("a", "<", 1.0),))
        b = Filter(Scan("t"), (Predicate("a", ">", 1.0),))
        assert template_signature(a) != template_signature(b)

    def test_template_groups_are_coarser_than_strict(self):
        instances = [filtered(float(v)) for v in range(10)]
        strict = {signature(p) for p in instances}
        templates = {template_signature(p) for p in instances}
        assert len(strict) == 10
        assert len(templates) == 1


class TestEnumerate:
    def test_every_node_has_a_signature(self):
        plan = Join(filtered(1.0), Scan("u"), "k", "k")
        sigs = enumerate_signatures(plan)
        assert len(sigs) == plan.size  # all distinct here

    def test_shared_subtrees_collapse(self):
        from repro.engine import Union

        shared = filtered(1.0)
        plan = Union(shared, shared)
        sigs = enumerate_signatures(plan)
        # Scan, Filter, Union — the duplicate branch collapses.
        assert len(sigs) == 3


class TestSemanticSignature:
    def test_predicate_order_is_irrelevant(self):
        from repro.engine import semantic_signature

        a = Filter(Scan("t"), (Predicate("a", "=", 1.0), Predicate("b", "<", 2.0)))
        b = Filter(Scan("t"), (Predicate("b", "<", 2.0), Predicate("a", "=", 1.0)))
        assert signature(a) != signature(b)
        assert semantic_signature(a) == semantic_signature(b)

    def test_join_is_symmetric(self):
        from repro.engine import semantic_signature

        j1 = Join(Scan("a"), Scan("b"), "k1", "k2")
        j2 = Join(Scan("b"), Scan("a"), "k2", "k1")
        assert signature(j1) != signature(j2)
        assert semantic_signature(j1) == semantic_signature(j2)

    def test_union_is_symmetric(self):
        from repro.engine import Union, semantic_signature

        u1 = Union(Scan("a"), Scan("b"))
        u2 = Union(Scan("b"), Scan("a"))
        assert semantic_signature(u1) == semantic_signature(u2)

    def test_different_semantics_still_differ(self):
        from repro.engine import semantic_signature

        a = Filter(Scan("t"), (Predicate("a", "<", 1.0),))
        b = Filter(Scan("t"), (Predicate("a", "<", 2.0),))
        assert semantic_signature(a) != semantic_signature(b)

    def test_canonicalization_recurses(self):
        from repro.engine import semantic_signature

        inner1 = Filter(Scan("t"), (Predicate("a", "=", 1.0), Predicate("b", "=", 2.0)))
        inner2 = Filter(Scan("t"), (Predicate("b", "=", 2.0), Predicate("a", "=", 1.0)))
        p1 = Join(inner1, Scan("u"), "k", "k")
        p2 = Join(Scan("u"), inner2, "k", "k")
        assert semantic_signature(p1) == semantic_signature(p2)
