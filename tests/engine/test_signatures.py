"""Tests for strict and template signatures."""

from dataclasses import replace

from repro.engine import (
    Filter,
    Join,
    Predicate,
    Scan,
    Union,
    signature,
    signatures,
    template_signature,
)
from repro.engine.serialize import deserialize, serialize
from repro.engine.signatures import enumerate_all_signatures, enumerate_signatures


def filtered(value):
    return Filter(Scan("t"), (Predicate("a", "<=", value),))


class TestStrictSignature:
    def test_identical_plans_match(self):
        assert signature(filtered(5.0)) == signature(filtered(5.0))

    def test_different_literals_differ(self):
        assert signature(filtered(5.0)) != signature(filtered(6.0))

    def test_different_tables_differ(self):
        a = Filter(Scan("t"), (Predicate("a", "=", 1.0),))
        b = Filter(Scan("u"), (Predicate("a", "=", 1.0),))
        assert signature(a) != signature(b)

    def test_child_order_matters_for_join(self):
        j1 = Join(Scan("a"), Scan("b"), "k", "k")
        j2 = Join(Scan("b"), Scan("a"), "k", "k")
        assert signature(j1) != signature(j2)

    def test_operator_type_matters(self):
        from repro.engine import Aggregate, Project

        p = Project(Scan("t"), ("a",))
        a = Aggregate(Scan("t"), ("a",))
        assert signature(p) != signature(a)


class TestTemplateSignature:
    def test_literal_changes_collapse(self):
        # The SCOPE recurring-job pattern: same script, new predicate value.
        assert template_signature(filtered(5.0)) == template_signature(filtered(99.0))

    def test_different_columns_do_not_collapse(self):
        a = Filter(Scan("t"), (Predicate("a", "=", 1.0),))
        b = Filter(Scan("t"), (Predicate("b", "=", 1.0),))
        assert template_signature(a) != template_signature(b)

    def test_different_ops_do_not_collapse(self):
        a = Filter(Scan("t"), (Predicate("a", "<", 1.0),))
        b = Filter(Scan("t"), (Predicate("a", ">", 1.0),))
        assert template_signature(a) != template_signature(b)

    def test_template_groups_are_coarser_than_strict(self):
        instances = [filtered(float(v)) for v in range(10)]
        strict = {signature(p) for p in instances}
        templates = {template_signature(p) for p in instances}
        assert len(strict) == 10
        assert len(templates) == 1


class TestEnumerate:
    def test_every_node_has_a_signature(self):
        plan = Join(filtered(1.0), Scan("u"), "k", "k")
        sigs = enumerate_signatures(plan)
        assert len(sigs) == plan.size  # all distinct here

    def test_shared_subtrees_collapse(self):
        from repro.engine import Union

        shared = filtered(1.0)
        plan = Union(shared, shared)
        sigs = enumerate_signatures(plan)
        # Scan, Filter, Union — the duplicate branch collapses.
        assert len(sigs) == 3


class TestMemoization:
    def test_signatures_agrees_with_single_flavour_functions(self):
        plan = Join(filtered(3.0), Scan("u"), "k", "k")
        sigs = signatures(plan)
        assert sigs.strict == signature(plan)
        assert sigs.template == template_signature(plan)

    def test_repeated_calls_return_cached_pair(self):
        plan = filtered(7.0)
        assert signatures(plan) is signatures(plan)

    def test_shared_subtree_objects_hash_consistently(self):
        shared = filtered(1.0)
        plan_a = Union(shared, Scan("u"))
        plan_b = Join(shared, Scan("w"), "k", "k")
        # The shared node was hashed under plan_a; plan_b must see the
        # same child hash, i.e. equal to a structurally fresh copy.
        signatures(plan_a)
        assert signature(plan_b) == signature(
            Join(filtered(1.0), Scan("w"), "k", "k")
        )

    def test_cache_not_inherited_by_modified_copies(self):
        original = filtered(5.0)
        cached = signature(original)
        modified = replace(
            original, predicates=(Predicate("a", "<=", 6.0),)
        )
        assert signature(modified) != cached
        assert signature(original) == cached

    def test_strict_and_template_diverge_exactly_on_literals(self):
        base = filtered(5.0)
        drifted_literal = filtered(99.0)
        different_column = Filter(Scan("t"), (Predicate("b", "<=", 5.0),))
        base_sigs = signatures(base)
        drifted_sigs = signatures(drifted_literal)
        other_sigs = signatures(different_column)
        assert base_sigs.strict != drifted_sigs.strict
        assert base_sigs.template == drifted_sigs.template
        assert base_sigs.strict != other_sigs.strict
        assert base_sigs.template != other_sigs.template

    def test_cached_nodes_stay_equal_to_fresh_nodes(self):
        cached = filtered(2.0)
        signatures(cached)
        fresh = filtered(2.0)
        assert cached == fresh
        assert hash(cached) == hash(fresh)

    def test_serialization_round_trip_preserves_signatures(self):
        plan = Join(filtered(4.0), Scan("u"), "k", "k")
        sigs = signatures(plan)
        round_tripped = deserialize(serialize(plan))
        assert signatures(round_tripped) == sigs

    def test_enumerate_all_matches_separate_enumerations(self):
        plan = Union(Join(filtered(1.0), Scan("u"), "k", "k"), filtered(2.0))
        strict_map, template_map = enumerate_all_signatures(plan)
        assert strict_map == enumerate_signatures(plan, strict=True)
        assert template_map == enumerate_signatures(plan, strict=False)


class TestSemanticSignature:
    def test_predicate_order_is_irrelevant(self):
        from repro.engine import semantic_signature

        a = Filter(Scan("t"), (Predicate("a", "=", 1.0), Predicate("b", "<", 2.0)))
        b = Filter(Scan("t"), (Predicate("b", "<", 2.0), Predicate("a", "=", 1.0)))
        assert signature(a) != signature(b)
        assert semantic_signature(a) == semantic_signature(b)

    def test_join_is_symmetric(self):
        from repro.engine import semantic_signature

        j1 = Join(Scan("a"), Scan("b"), "k1", "k2")
        j2 = Join(Scan("b"), Scan("a"), "k2", "k1")
        assert signature(j1) != signature(j2)
        assert semantic_signature(j1) == semantic_signature(j2)

    def test_union_is_symmetric(self):
        from repro.engine import Union, semantic_signature

        u1 = Union(Scan("a"), Scan("b"))
        u2 = Union(Scan("b"), Scan("a"))
        assert semantic_signature(u1) == semantic_signature(u2)

    def test_different_semantics_still_differ(self):
        from repro.engine import semantic_signature

        a = Filter(Scan("t"), (Predicate("a", "<", 1.0),))
        b = Filter(Scan("t"), (Predicate("a", "<", 2.0),))
        assert semantic_signature(a) != semantic_signature(b)

    def test_canonicalization_recurses(self):
        from repro.engine import semantic_signature

        inner1 = Filter(Scan("t"), (Predicate("a", "=", 1.0), Predicate("b", "=", 2.0)))
        inner2 = Filter(Scan("t"), (Predicate("b", "=", 2.0), Predicate("a", "=", 1.0)))
        p1 = Join(inner1, Scan("u"), "k", "k")
        p2 = Join(Scan("u"), inner2, "k", "k")
        assert semantic_signature(p1) == semantic_signature(p2)
