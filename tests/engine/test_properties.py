"""Property-based invariants over random plans."""

import numpy as np
from hypothesis import HealthCheck, given, settings

from repro.engine import (
    Catalog,
    ColumnStats,
    DefaultCardinalityEstimator,
    DefaultCostModel,
    Optimizer,
    RuleConfig,
    TableDef,
    TrueCardinalityModel,
    compile_stages,
    semantic_signature,
    signature,
    template_signature,
)
from repro.engine.serialize import from_json, to_json

from tests.engine.strategies import expressions


def _catalog():
    cat = Catalog()
    cat.add(
        TableDef(
            "fact",
            n_rows=1_000_000,
            columns=(
                ColumnStats("key", distinct=500_000),
                ColumnStats("a0", distinct=100, low=0, high=1000, skew=1.0),
                ColumnStats("a1", distinct=50, low=0, high=100),
            ),
        )
    )
    cat.add(
        TableDef(
            "dim",
            n_rows=10_000,
            columns=(
                ColumnStats("key", distinct=5_000),
                ColumnStats("d0", distinct=20, low=0, high=100),
            ),
        )
    )
    return cat


CATALOG = _catalog()
SLOW = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestPlanProperties:
    @SLOW
    @given(plan=expressions())
    def test_serialization_round_trips_any_plan(self, plan):
        assert from_json(to_json(plan)) == plan

    @SLOW
    @given(plan=expressions())
    def test_signatures_are_stable_and_distinguishing(self, plan):
        assert signature(plan) == signature(plan)
        assert template_signature(plan) == template_signature(plan)
        assert semantic_signature(plan) == semantic_signature(plan)

    @SLOW
    @given(plan=expressions())
    def test_estimates_positive_and_finite(self, plan):
        for model in (
            DefaultCardinalityEstimator(CATALOG),
            TrueCardinalityModel(CATALOG, seed=3),
        ):
            estimate = model.estimate(plan)
            assert np.isfinite(estimate)
            assert estimate >= 1.0 or isinstance(estimate, float)

    @SLOW
    @given(plan=expressions())
    def test_costs_non_negative(self, plan):
        model = DefaultCostModel(CATALOG, DefaultCardinalityEstimator(CATALOG))
        cost = model.cost(plan)
        assert cost.cpu >= 0.0 and cost.io >= 0.0

    @SLOW
    @given(plan=expressions())
    def test_optimizer_reaches_fixpoint_on_any_plan(self, plan):
        optimizer = Optimizer(CATALOG)
        once = optimizer.optimize(plan).plan
        twice = optimizer.optimize(once).plan
        assert once == twice

    @SLOW
    @given(plan=expressions())
    def test_all_off_config_is_identity(self, plan):
        optimizer = Optimizer(CATALOG)
        assert optimizer.optimize(plan, RuleConfig.all_off()).plan == plan

    @SLOW
    @given(plan=expressions(max_depth=3))
    def test_stage_compilation_is_topological(self, plan):
        model = DefaultCostModel(CATALOG, DefaultCardinalityEstimator(CATALOG))
        graph = compile_stages(plan, model)
        for stage in graph.stages:
            assert all(dep < stage.stage_id for dep in stage.depends_on)
        assert graph.critical_path_seconds() <= graph.total_work_seconds() + 1e-9
