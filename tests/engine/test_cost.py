"""Tests for the analytical cost model."""

import pytest

from repro.engine import (
    Aggregate,
    DefaultCardinalityEstimator,
    DefaultCostModel,
    Filter,
    Join,
    Predicate,
    PlanCost,
    Project,
    Scan,
    Union,
)


@pytest.fixture
def model(catalog):
    return DefaultCostModel(catalog, DefaultCardinalityEstimator(catalog))


class TestPlanCost:
    def test_total_and_addition(self):
        a = PlanCost(cpu=1.0, io=2.0)
        b = PlanCost(cpu=3.0, io=4.0)
        combined = a + b
        assert combined.cpu == 4.0 and combined.io == 6.0
        assert combined.total == 10.0


class TestNodeCosts:
    def test_scan_cost_is_io_only(self, model):
        cost = model.cost(Scan("fact"))
        assert cost.io == pytest.approx(1_000_000)
        assert cost.cpu == 0.0

    def test_filter_adds_cpu_for_input_rows(self, model):
        plan = Filter(Scan("fact"), (Predicate("a1", "<=", 25.0),))
        cost = model.cost(plan)
        assert cost.cpu == pytest.approx(1_000_000)  # evaluates every input row
        assert cost.io == pytest.approx(1_000_000)

    def test_smaller_build_side_is_cheaper(self, model):
        small_build = Join(Scan("dim"), Scan("fact"), "key", "key")
        big_build = Join(Scan("fact"), Scan("dim"), "key", "key")
        assert model.cost(small_build).total < model.cost(big_build).total

    def test_union_is_cheap(self, model):
        union_cost = model.cost(Union(Scan("fact"), Scan("dim"))).cpu
        filter_cost = model.cost(
            Filter(Scan("fact"), (Predicate("a1", "<", 50.0),))
        ).cpu
        assert union_cost < filter_cost

    def test_cost_accumulates_over_nodes(self, model):
        inner = Filter(Scan("fact"), (Predicate("a1", "<=", 25.0),))
        outer = Aggregate(inner, ("a1",))
        assert model.cost(outer).total > model.cost(inner).total


class TestWidth:
    def test_scan_is_full_width(self, model):
        assert model.width_fraction(Scan("fact")) == 1.0

    def test_project_narrows_width(self, model):
        plan = Project(Scan("fact"), ("a0",))
        assert model.width_fraction(plan) < 1.0

    def test_projection_narrowing_reduces_downstream_cost(self, model):
        wide = Aggregate(Scan("fact"), ("a1",))
        narrow = Aggregate(Project(Scan("fact"), ("a1",)), ("a1",))
        # The aggregate over the narrowed input is cheaper even counting
        # the projection pass itself.
        wide_agg_cost = model._node_cost(wide).total
        narrow_agg_cost = model._node_cost(narrow).total
        assert narrow_agg_cost < wide_agg_cost

    def test_width_floor(self, model):
        plan = Project(Scan("fact"), ("a0",))
        assert model.width_fraction(plan) >= 0.05


class TestOutputBytes:
    def test_scaled_by_row_bytes(self, model, catalog):
        nbytes = model.output_bytes(Scan("fact"))
        assert nbytes == pytest.approx(
            1_000_000 * catalog.get("fact").row_bytes
        )

    def test_unknown_table_raises_at_estimation(self, model):
        # Costing requires cardinalities; scanning an unregistered table
        # fails fast at the estimator.
        with pytest.raises(KeyError):
            model.output_bytes(Scan("ghost_table"))

    def test_projection_shrinks_bytes(self, model):
        full = model.output_bytes(Scan("fact"))
        narrowed = model.output_bytes(Project(Scan("fact"), ("a0",)))
        assert narrowed < full
