"""Tests for the catalog and synthetic table generation."""

import pytest

from repro.engine import Catalog, ColumnStats, TableDef


class TestColumnStats:
    def test_invalid_distinct(self):
        with pytest.raises(ValueError):
            ColumnStats("c", distinct=0)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            ColumnStats("c", distinct=1, low=5, high=5)

    def test_negative_skew(self):
        with pytest.raises(ValueError):
            ColumnStats("c", distinct=1, skew=-1)


class TestTableDef:
    def test_column_lookup(self):
        t = TableDef("t", 10, (ColumnStats("a", 5),))
        assert t.column("a").distinct == 5
        assert t.has_column("a") and not t.has_column("b")

    def test_missing_column_raises(self):
        t = TableDef("t", 10, (ColumnStats("a", 5),))
        with pytest.raises(KeyError):
            t.column("z")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            TableDef("t", 10, (ColumnStats("a", 5), ColumnStats("a", 6)))

    def test_needs_columns(self):
        with pytest.raises(ValueError):
            TableDef("t", 10, ())


class TestCatalog:
    def test_add_and_get(self, catalog):
        assert catalog.get("fact").n_rows == 1_000_000
        assert "fact" in catalog and "nope" not in catalog

    def test_duplicate_table_rejected(self, catalog):
        with pytest.raises(ValueError, match="already"):
            catalog.add(TableDef("fact", 1, (ColumnStats("x", 1),)))

    def test_unknown_table_raises(self, catalog):
        with pytest.raises(KeyError):
            catalog.get("ghost")

    def test_owner_of_column(self, catalog):
        assert catalog.owner_of_column("d0", {"fact", "dim"}) == "dim"
        assert catalog.owner_of_column("zz", {"fact", "dim"}) is None

    def test_synthetic_is_deterministic(self):
        a = Catalog.synthetic(n_tables=5, rng=3)
        b = Catalog.synthetic(n_tables=5, rng=3)
        assert [t.name for t in a.tables()] == [t.name for t in b.tables()]
        assert [t.n_rows for t in a.tables()] == [t.n_rows for t in b.tables()]

    def test_synthetic_has_shared_join_key(self):
        cat = Catalog.synthetic(n_tables=4, rng=0)
        assert all(t.has_column("key") for t in cat.tables())

    def test_synthetic_has_facts_and_dims(self):
        cat = Catalog.synthetic(n_tables=8, rng=1)
        sizes = sorted(t.n_rows for t in cat.tables())
        assert sizes[-1] > 100 * sizes[0]
