"""Hypothesis strategies for random-but-valid engine structures."""

from hypothesis import strategies as st

from repro.engine import (
    Aggregate,
    Filter,
    Join,
    Predicate,
    Project,
    Scan,
    Union,
)

#: Tables/columns matching the engine-test catalog (tests/engine/conftest).
TABLES = ("fact", "dim")
COLUMNS = ("a0", "a1", "d0", "key")
OPS = ("<", "<=", ">", ">=", "=", "!=")


@st.composite
def predicates(draw):
    return Predicate(
        column=draw(st.sampled_from(COLUMNS)),
        op=draw(st.sampled_from(OPS)),
        value=draw(st.floats(0, 1000, allow_nan=False)),
    )


@st.composite
def expressions(draw, max_depth: int = 4):
    """A random well-formed expression over the test catalog."""
    if max_depth <= 1:
        return Scan(draw(st.sampled_from(TABLES)))
    kind = draw(
        st.sampled_from(
            ("scan", "filter", "project", "join", "aggregate", "union")
        )
    )
    if kind == "scan":
        return Scan(draw(st.sampled_from(TABLES)))
    if kind == "filter":
        child = draw(expressions(max_depth=max_depth - 1))
        preds = draw(st.lists(predicates(), min_size=1, max_size=3))
        return Filter(child, tuple(preds))
    if kind == "project":
        child = draw(expressions(max_depth=max_depth - 1))
        columns = draw(
            st.lists(
                st.sampled_from(COLUMNS), min_size=1, max_size=3, unique=True
            )
        )
        return Project(child, tuple(columns))
    if kind == "join":
        left = draw(expressions(max_depth=max_depth - 1))
        right = draw(expressions(max_depth=max_depth - 1))
        return Join(left, right, "key", "key")
    if kind == "aggregate":
        child = draw(expressions(max_depth=max_depth - 1))
        group = draw(
            st.lists(
                st.sampled_from(COLUMNS), min_size=0, max_size=2, unique=True
            )
        )
        return Aggregate(child, tuple(group))
    left = draw(expressions(max_depth=max_depth - 1))
    right = draw(expressions(max_depth=max_depth - 1))
    return Union(left, right)
