"""Tests for default and ground-truth cardinality models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    Aggregate,
    DefaultCardinalityEstimator,
    Filter,
    Join,
    Predicate,
    Project,
    Scan,
    TrueCardinalityModel,
    Union,
)


@pytest.fixture
def default(catalog):
    return DefaultCardinalityEstimator(catalog)


@pytest.fixture
def truth(catalog):
    return TrueCardinalityModel(catalog, seed=7)


class TestDefaultEstimator:
    def test_scan_returns_table_rows(self, default):
        assert default.estimate(Scan("fact")) == 1_000_000

    def test_project_is_passthrough(self, default):
        assert default.estimate(Project(Scan("fact"), ("a0",))) == 1_000_000

    def test_range_filter_uniform(self, default):
        # a1 in [0, 100]; a1 <= 25 keeps 25%.
        expr = Filter(Scan("fact"), (Predicate("a1", "<=", 25.0),))
        assert default.estimate(expr) == pytest.approx(250_000)

    def test_equality_filter_one_over_distinct(self, default):
        expr = Filter(Scan("fact"), (Predicate("a1", "=", 10.0),))
        assert default.estimate(expr) == pytest.approx(1_000_000 / 50)

    def test_conjunction_multiplies(self, default):
        expr = Filter(
            Scan("fact"),
            (Predicate("a1", "<=", 50.0), Predicate("a1", ">", 25.0)),
        )
        assert default.estimate(expr) == pytest.approx(1_000_000 * 0.5 * 0.75)

    def test_join_formula(self, default):
        join = Join(Scan("fact"), Scan("dim"), "key", "key")
        expected = 1_000_000 * 10_000 / 10_000
        assert default.estimate(join) == pytest.approx(expected)

    def test_union_sums(self, default):
        assert default.estimate(Union(Scan("fact"), Scan("dim"))) == 1_010_000

    def test_aggregate_bounded_by_distincts(self, default):
        agg = Aggregate(Scan("fact"), ("a1",))
        assert default.estimate(agg) == 50.0

    def test_global_aggregate_returns_one(self, default):
        assert default.estimate(Aggregate(Scan("fact"), ())) == 1.0

    def test_estimate_never_below_one(self, default):
        expr = Filter(
            Scan("dim"),
            tuple(Predicate("d0", "=", float(v)) for v in range(5)),
        )
        assert default.estimate(expr) >= 1.0

    def test_out_of_range_value_clipped(self, default):
        low = Filter(Scan("fact"), (Predicate("a1", "<=", -100.0),))
        high = Filter(Scan("fact"), (Predicate("a1", "<=", 1e9),))
        assert default.estimate(low) == 1.0  # floored at one row
        assert default.estimate(high) == 1_000_000


class TestTrueModel:
    def test_deterministic_across_instances(self, catalog):
        expr = Filter(Scan("fact"), (Predicate("a0", "<=", 100.0),))
        a = TrueCardinalityModel(catalog, seed=1).estimate(expr)
        b = TrueCardinalityModel(catalog, seed=1).estimate(expr)
        assert a == b

    def test_seed_changes_correlations(self, catalog):
        expr = Join(Scan("fact"), Scan("dim"), "key", "key")
        a = TrueCardinalityModel(catalog, seed=1).estimate(expr)
        b = TrueCardinalityModel(catalog, seed=2).estimate(expr)
        assert a != b

    def test_skew_inflates_low_range_selectivity(self, catalog, default, truth):
        # a0 has skew=1.0 and range [0, 1000]: mass near 0 means
        # a0 <= 100 captures more than the uniform 10%.
        expr = Filter(Scan("fact"), (Predicate("a0", "<=", 100.0),))
        assert truth.estimate(expr) > default.estimate(expr)

    def test_no_skew_matches_default_on_single_range(self, catalog, default, truth):
        expr = Filter(Scan("fact"), (Predicate("a1", "<=", 25.0),))
        assert truth.estimate(expr) == pytest.approx(default.estimate(expr))

    def test_correlation_raises_conjunction_above_independence(
        self, catalog, default, truth
    ):
        expr = Filter(
            Scan("fact"),
            (Predicate("a1", "<=", 30.0), Predicate("a1", ">", 10.0)),
        )
        assert truth.estimate(expr) >= default.estimate(expr)

    def test_smooth_in_predicate_value(self, truth):
        # Learned micromodels need the target to vary smoothly with the
        # parameter; check monotonicity of <= selectivity.
        values = np.linspace(10, 900, 15)
        cards = [
            truth.estimate(Filter(Scan("fact"), (Predicate("a0", "<=", v),)))
            for v in values
        ]
        assert all(b >= a for a, b in zip(cards, cards[1:]))

    def test_aggregate_below_default_bound(self, catalog, default, truth):
        agg = Aggregate(Scan("fact"), ("a1",))
        assert truth.estimate(agg) <= default.estimate(agg)

    @settings(max_examples=20, deadline=None)
    @given(value=st.floats(0, 1000), seed=st.integers(0, 50))
    def test_property_true_cardinality_positive_and_bounded(self, value, seed):
        from repro.engine import Catalog, ColumnStats, TableDef

        catalog = Catalog()
        catalog.add(
            TableDef(
                "fact",
                n_rows=1_000_000,
                columns=(
                    ColumnStats("key", distinct=10_000),
                    ColumnStats("a0", distinct=100, low=0, high=1000, skew=1.0),
                ),
            )
        )
        truth = TrueCardinalityModel(catalog, seed=seed)
        expr = Filter(Scan("fact"), (Predicate("a0", "<=", value),))
        est = truth.estimate(expr)
        assert 1.0 <= est <= 1_000_000


class TestSelectivity:
    def test_leaf_selectivity_is_one(self, default):
        assert default.selectivity(Scan("fact")) == 1.0

    def test_filter_selectivity_matches_ratio(self, default):
        expr = Filter(Scan("fact"), (Predicate("a1", "<=", 25.0),))
        assert default.selectivity(expr) == pytest.approx(0.25)
