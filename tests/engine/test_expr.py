"""Tests for expression trees and rewriting helpers."""

import pytest

from repro.engine import Aggregate, Filter, Join, Predicate, Project, Scan, Union
from repro.engine.expr import replace_subexpression, rewrite_bottom_up


@pytest.fixture
def plan():
    scan = Scan("fact")
    filtered = Filter(scan, (Predicate("a0", "<=", 10.0),))
    joined = Join(filtered, Scan("dim"), "key", "key")
    return Aggregate(Project(joined, ("a0",)), ("a0",))


class TestPredicates:
    def test_invalid_operator_rejected(self):
        with pytest.raises(ValueError, match="operator"):
            Predicate("c", "~", 1.0)

    def test_str_roundtrip(self):
        assert str(Predicate("a0", "<=", 5.0)) == "a0 <= 5"


class TestStructure:
    def test_walk_is_postorder(self, plan):
        names = [type(n).__name__ for n in plan.walk()]
        assert names == ["Scan", "Filter", "Scan", "Join", "Project", "Aggregate"]

    def test_size_and_depth(self, plan):
        assert plan.size == 6
        assert plan.depth == 5

    def test_tables(self, plan):
        assert plan.tables() == {"fact", "dim"}

    def test_subexpressions_excludes_root(self, plan):
        subs = list(plan.subexpressions())
        assert plan not in subs
        assert len(subs) == 5

    def test_equality_is_structural(self):
        a = Filter(Scan("t"), (Predicate("c", "=", 1.0),))
        b = Filter(Scan("t"), (Predicate("c", "=", 1.0),))
        assert a == b and a is not b
        assert hash(a) == hash(b)

    def test_filter_requires_predicates(self):
        with pytest.raises(ValueError):
            Filter(Scan("t"), ())

    def test_project_requires_columns(self):
        with pytest.raises(ValueError):
            Project(Scan("t"), ())

    def test_with_children_replaces(self):
        join = Join(Scan("a"), Scan("b"), "k", "k")
        swapped = join.with_children((Scan("c"), Scan("d")))
        assert swapped.left == Scan("c") and swapped.right == Scan("d")
        assert swapped.left_key == "k"

    def test_scan_with_children_rejects_any(self):
        with pytest.raises(ValueError):
            Scan("t").with_children((Scan("u"),))


class TestRewriting:
    def test_identity_rewrite_preserves_plan(self, plan):
        assert rewrite_bottom_up(plan, lambda n: n) == plan

    def test_bottom_up_sees_rewritten_children(self):
        # Replace Scan("a") with Scan("b"); the union above must see it.
        plan = Union(Scan("a"), Scan("c"))

        def swap(node):
            if node == Scan("a"):
                return Scan("b")
            return node

        out = rewrite_bottom_up(plan, swap)
        assert out == Union(Scan("b"), Scan("c"))

    def test_replace_subexpression_all_occurrences(self):
        shared = Filter(Scan("t"), (Predicate("c", "=", 1.0),))
        plan = Union(shared, Project(shared, ("c",)))
        out = replace_subexpression(plan, shared, Scan("view1"))
        assert out == Union(Scan("view1"), Project(Scan("view1"), ("c",)))

    def test_replace_missing_target_is_noop(self, plan):
        out = replace_subexpression(plan, Scan("nope"), Scan("view"))
        assert out == plan
