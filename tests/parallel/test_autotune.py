"""Cost-model tests for the granularity autotuner."""

import math
import os
import time

import pytest

from repro.parallel import (
    FORCE_ENV,
    DispatchPlan,
    GranularityTuner,
    WorkerPool,
    pmap,
)
from repro.parallel.autotune import (
    DEFAULT_WARM_OVERHEAD_SECONDS,
    _MAX_CHUNK_FLOOR,
)


def _work(x: int) -> int:
    return x + 1


def _cheap(x: int) -> int:
    return x


def _pid_probe(x: int) -> int:
    return os.getpid()


class TestPlanDecisions:
    def test_degenerate_width_goes_serial(self):
        tuner = GranularityTuner()
        assert tuner.plan(_work, 100, workers=1) == DispatchPlan(
            False, 1, "degenerate"
        )

    def test_degenerate_batch_goes_serial(self):
        tuner = GranularityTuner()
        assert tuner.plan(_work, 1, workers=4).reason == "degenerate"
        assert tuner.plan(_work, 0, workers=4).reason == "degenerate"

    def test_unknown_function_explores_in_parallel(self):
        tuner = GranularityTuner()
        plan = tuner.plan(_work, 64, workers=4)
        assert plan.parallel
        assert plan.reason == "explore"
        assert plan.chunksize == math.ceil(64 / (4 * 4))

    def test_cheap_function_learns_to_stay_serial(self):
        tuner = GranularityTuner()
        # 1 microsecond/item: 100 items of work can never amortize
        # a millisecond-scale dispatch overhead.
        tuner.note_serial(_cheap, 1000, seconds=1e-3)
        plan = tuner.plan(_cheap, 100, workers=4)
        assert not plan.parallel
        assert plan.reason == "amortize"

    def test_expensive_function_goes_parallel(self):
        tuner = GranularityTuner()
        # 10 ms/item: 100 items = 1 s serial vs ~0.25 s across 4 workers.
        tuner.note_serial(_work, 10, seconds=0.1)
        plan = tuner.plan(_work, 100, workers=4)
        assert plan.parallel
        assert plan.reason == "cost-model"

    def test_break_even_prefers_serial(self):
        tuner = GranularityTuner(warm_overhead_seconds=0.1)
        tuner.note_serial(_work, 10, seconds=1e-3)  # 0.1 ms/item
        # t_serial = 0.02 s <= 0.1 + 0.005 -> serial wins.
        assert not tuner.plan(_work, 200, workers=4).parallel


class TestChunkFloor:
    def test_no_information_means_floor_one(self):
        assert GranularityTuner().chunk_floor(_work) == 1

    def test_floor_targets_chunk_seconds(self):
        tuner = GranularityTuner(target_chunk_seconds=5e-3)
        tuner.note_serial(_work, 1000, seconds=1.0)  # 1 ms/item
        assert tuner.chunk_floor(_work) == 5

    def test_floor_is_capped(self):
        tuner = GranularityTuner(target_chunk_seconds=10.0)
        tuner.note_serial(_work, 1_000_000, seconds=1e-3)  # 1 ns/item
        assert tuner.chunk_floor(_work) == _MAX_CHUNK_FLOOR

    def test_plan_chunksize_never_below_floor(self):
        tuner = GranularityTuner(target_chunk_seconds=5e-3)
        tuner.note_serial(_work, 10, seconds=1.0)  # 0.1 s/item -> parallel
        plan = tuner.plan(_work, 8, workers=4)
        assert plan.parallel
        # ceil(8 / 16) == 1 would be the naive chunk; floor keeps it >= 1
        # and the old ``chunksize=0`` degenerate case is impossible.
        assert plan.chunksize >= 1


class TestObservations:
    def test_serial_notes_train_per_item_ewma(self):
        tuner = GranularityTuner(alpha=0.5)
        tuner.note_serial(_work, 10, seconds=1.0)  # 0.1 s/item
        assert tuner.profile(_work).serial_item_seconds == pytest.approx(0.1)
        tuner.note_serial(_work, 10, seconds=3.0)  # fresh 0.3 s/item
        assert tuner.profile(_work).serial_item_seconds == pytest.approx(0.2)
        assert tuner.profile(_work).serial_calls == 2

    def test_cold_dispatch_never_trains_warm_overhead(self):
        tuner = GranularityTuner()
        tuner.note_serial(_work, 10, seconds=0.01)
        before = tuner.warm_overhead_seconds
        tuner.note_parallel(_work, 10, workers=2, seconds=5.0, cold=True)
        assert tuner.warm_overhead_seconds == before
        assert tuner.profile(_work).parallel_calls == 1

    def test_warm_dispatch_residual_trains_overhead(self):
        tuner = GranularityTuner()
        tuner.note_serial(_work, 10, seconds=0.01)  # 1 ms/item
        # ideal = 10 * 1ms / 2 = 5 ms; wall 105 ms -> residual 0.1 s.
        tuner.note_parallel(_work, 10, workers=2, seconds=0.105)
        assert tuner.warm_overhead_seconds > DEFAULT_WARM_OVERHEAD_SECONDS

    def test_overhead_is_bounded(self):
        tuner = GranularityTuner(alpha=1.0)
        tuner.note_serial(_work, 10, seconds=0.01)
        tuner.note_parallel(_work, 10, workers=2, seconds=100.0)
        assert tuner.warm_overhead_seconds <= 1.0

    def test_reset_forgets_everything(self):
        tuner = GranularityTuner()
        tuner.note_serial(_work, 10, seconds=1.0)
        tuner.note_parallel(_work, 10, workers=2, seconds=1.0)
        tuner.reset()
        assert tuner.warm_overhead_seconds == DEFAULT_WARM_OVERHEAD_SECONDS
        assert tuner.profile(_work).serial_item_seconds is None

    def test_snapshot_is_jsonable(self):
        import json

        tuner = GranularityTuner()
        tuner.note_serial(_work, 10, seconds=1.0)
        snap = json.loads(json.dumps(tuner.snapshot()))
        key = GranularityTuner.key(_work)
        assert snap["functions"][key]["serial_calls"] == 1


class TestStatePersistence:
    """Learned costs survive pool restarts and fabric checkpoints."""

    def test_state_dict_roundtrip_restores_the_learned_model(self):
        tuner = GranularityTuner(alpha=0.5)
        tuner.note_serial(_work, 10, seconds=1.0)
        tuner.note_parallel(_work, 10, workers=2, seconds=0.2)
        twin = GranularityTuner()
        twin.load_state_dict(tuner.state_dict())
        assert twin.snapshot() == tuner.snapshot()
        assert twin.alpha == 0.5
        assert twin.plan(_work, 100, workers=4) == tuner.plan(_work, 100, workers=4)

    def test_load_state_dict_rejects_bad_alpha(self):
        state = GranularityTuner().state_dict()
        state["alpha"] = 0.0
        with pytest.raises(ValueError):
            GranularityTuner().load_state_dict(state)

    def test_pool_shutdown_and_rearm_keeps_the_ewma(self):
        """The regression: shutdown_pool() must not forget learned costs."""
        from repro.parallel import get_tuner, shutdown_pool

        tuner = get_tuner()
        saved = tuner.state_dict()
        try:
            tuner.note_serial(_work, 10, seconds=1.0)
            learned = tuner.profile(_work).serial_item_seconds
            shutdown_pool()
            assert get_tuner() is tuner
            assert tuner.profile(_work).serial_item_seconds == learned
            # Re-armed dispatches keep training the same profile.
            pmap(_work, range(4), workers=1)
            assert tuner.profile(_work).serial_calls >= 2
        finally:
            tuner.load_state_dict(saved)

    def test_checkpoint_restore_carries_tuner_state(self, tmp_path):
        from repro.fabric import (
            CheckpointStore,
            ControlPlane,
            FleetConfig,
            build_fleet,
        )
        from repro.parallel import get_tuner

        tuner = get_tuner()
        saved = tuner.state_dict()
        try:
            fabric = ControlPlane()
            build_fleet(
                fabric, FleetConfig(seed=0, days=2, include=("doppler",))
            )
            fabric.run_days(1)
            tuner.note_serial(_work, 10, seconds=1.0)
            learned = tuner.profile(_work).serial_item_seconds
            CheckpointStore(tmp_path / "ckpt").save(fabric)
            fabric.close()
            tuner.reset()
            assert tuner.profile(_work).serial_item_seconds is None
            CheckpointStore.load(tmp_path / "ckpt").close()
            assert tuner.profile(_work).serial_item_seconds == learned
        finally:
            tuner.load_state_dict(saved)


class TestPmapIntegration:
    """The tuner actually steers pmap's route."""

    @pytest.fixture
    def force_pools(self, monkeypatch):
        monkeypatch.setenv(FORCE_ENV, "1")

    def test_learned_cheap_fn_stays_serial_even_when_forced(self, force_pools):
        pool = WorkerPool()
        tuner = GranularityTuner()
        try:
            # Teach the tuner that _pid_probe is microsecond-cheap.
            start = time.perf_counter()
            [_pid_probe(i) for i in range(64)]
            tuner.note_serial(_pid_probe, 64, time.perf_counter() - start)
            pids = pmap(
                _pid_probe, range(64), workers=4, pool=pool, tuner=tuner
            )
            # Cost model routed the batch serially: parent PID, cold pool.
            assert set(pids) == {os.getpid()}
            assert not pool.started
        finally:
            pool.shutdown()

    def test_explicit_chunksize_overrides_the_tuner(self, force_pools):
        pool = WorkerPool()
        tuner = GranularityTuner()
        tuner.note_serial(_pid_probe, 1000, seconds=1e-6)  # absurdly cheap
        try:
            pids = pmap(
                _pid_probe,
                range(8),
                workers=2,
                chunksize=1,
                pool=pool,
                tuner=tuner,
            )
            assert os.getpid() not in set(pids)  # forced across the boundary
        finally:
            pool.shutdown()

    def test_serial_route_trains_the_model(self):
        pool = WorkerPool()
        tuner = GranularityTuner()
        try:
            pmap(_cheap, range(32), workers=1, pool=pool, tuner=tuner)
            prof = tuner.profile(_cheap)
            assert prof.serial_calls == 1
            assert prof.serial_item_seconds is not None
        finally:
            pool.shutdown()
