"""Tests for the process-parallel fan-out substrate."""
