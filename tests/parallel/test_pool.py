"""Tests for the process-pool fan-out layer (pmap / shard_map)."""

import os

from repro.parallel import (
    FORCE_ENV,
    pmap,
    resolve_workers,
    shard_items,
    shard_map,
)


def _double(x: int) -> int:
    return x * 2


def _pid_of(_: object) -> int:
    return os.getpid()


def _shard_echo(shard: list) -> list:
    return list(shard)


class TestResolveWorkers:
    def test_serial_values(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(0) == 1
        assert resolve_workers(1) == 1
        assert resolve_workers(-3) == 1

    def test_pytest_forces_serial(self, monkeypatch):
        monkeypatch.delenv(FORCE_ENV, raising=False)
        assert "PYTEST_CURRENT_TEST" in os.environ
        assert resolve_workers(4) == 1

    def test_force_env_overrides_pytest_guard(self, monkeypatch):
        monkeypatch.setenv(FORCE_ENV, "1")
        assert resolve_workers(4) == 4


class TestPmap:
    def test_serial_matches_listcomp(self):
        assert pmap(_double, range(5)) == [0, 2, 4, 6, 8]

    def test_serial_fallback_runs_closures(self, monkeypatch):
        # Under pytest (no force flag) no pool spins up, so even an
        # unpicklable closure works — proof the fallback stays serial.
        monkeypatch.delenv(FORCE_ENV, raising=False)
        offset = 10
        assert pmap(lambda x: x + offset, [1, 2], workers=8) == [11, 12]

    def test_single_item_never_pays_a_pool(self, monkeypatch):
        monkeypatch.setenv(FORCE_ENV, "1")
        assert pmap(lambda x: x + 1, [41], workers=4) == [42]

    def test_real_pool_preserves_order_and_results(self, monkeypatch):
        monkeypatch.setenv(FORCE_ENV, "1")
        items = list(range(24))
        # Explicit chunksize bypasses the autotuner, pinning the real
        # pool path regardless of what earlier tests taught it.
        assert pmap(_double, items, workers=2, chunksize=3) == [
            x * 2 for x in items
        ]

    def test_real_pool_crosses_the_process_boundary(self, monkeypatch):
        monkeypatch.setenv(FORCE_ENV, "1")
        pids = set(pmap(_pid_of, range(8), workers=2, chunksize=1))
        assert os.getpid() not in pids


class TestShardMap:
    def test_matches_shard_items_in_index_order(self):
        items = [f"k{i}" for i in range(30)]
        assert shard_map(_shard_echo, items, key=str, n_shards=7) == shard_items(
            items, key=str, n_shards=7
        )

    def test_worker_count_is_pure_throughput(self, monkeypatch):
        monkeypatch.setenv(FORCE_ENV, "1")
        items = [f"k{i}" for i in range(30)]
        serial = shard_map(_shard_echo, items, key=str, n_shards=5, workers=1)
        pooled = shard_map(_shard_echo, items, key=str, n_shards=5, workers=4)
        assert pooled == serial
