"""Shared-memory transport tests: publish/attach roundtrips, lifecycle."""

import pickle

import numpy as np
import pytest

from repro.parallel import (
    FORCE_ENV,
    BytesArena,
    ShmArray,
    WorkerPool,
    arena_blob,
    attach,
    close_all,
    detach_all,
    pmap,
)


@pytest.fixture(autouse=True)
def clean_attachments():
    yield
    detach_all()


class TestShmArrayRoundtrip:
    def test_plain_array_roundtrips(self):
        original = np.arange(1000, dtype=np.float64).reshape(10, 100)
        with ShmArray(original) as pub:
            view = attach(pub.handle)
            assert view.shape == (10, 100)
            assert view.dtype == np.float64
            np.testing.assert_array_equal(view, original)
            detach_all()

    def test_structured_dtype_roundtrips(self):
        original = np.zeros(5, dtype=[("job", np.uint32), ("sig", "S12")])
        original["job"] = [3, 1, 4, 1, 5]
        original["sig"] = [b"a", b"bb", b"ccc", b"dddd", b"eeeee"]
        with ShmArray(original) as pub:
            view = attach(pub.handle)
            np.testing.assert_array_equal(view, original)
            detach_all()

    def test_empty_array_roundtrips(self):
        with ShmArray(np.empty(0, dtype=np.int64)) as pub:
            assert attach(pub.handle).shape == (0,)
            detach_all()

    def test_attached_view_is_read_only(self):
        with ShmArray(np.arange(4)) as pub:
            view = attach(pub.handle)
            with pytest.raises(ValueError):
                view[0] = 99
            detach_all()

    def test_handle_is_picklable_and_small(self):
        with ShmArray(np.zeros(1_000_000)) as pub:
            blob = pickle.dumps(pub.handle)
            assert len(blob) < 512  # coordinates travel, bytes stay behind

    def test_attach_cache_returns_same_view(self):
        with ShmArray(np.arange(8)) as pub:
            assert attach(pub.handle) is attach(pub.handle)
            detach_all()

    def test_close_is_idempotent(self):
        pub = ShmArray(np.arange(4))
        pub.close()
        pub.close()

    def test_close_all_sweeps_live_publications(self):
        ShmArray(np.arange(4))
        ShmArray(np.arange(4))
        assert close_all() >= 2
        assert close_all() == 0

    def test_attach_after_unlink_fails(self):
        pub = ShmArray(np.arange(4))
        handle = pub.handle
        pub.close()
        with pytest.raises(FileNotFoundError):
            attach(handle)


class TestBytesArena:
    def test_blobs_extract_independently(self):
        blobs = [b"alpha", b"", b"gamma" * 100]
        with BytesArena(blobs) as arena:
            assert arena.handle.n_blobs == 3
            for i, blob in enumerate(blobs):
                assert arena_blob(arena.handle, i) == blob
            detach_all()

    def test_out_of_range_index_raises(self):
        with BytesArena([b"x"]) as arena:
            with pytest.raises(IndexError):
                arena_blob(arena.handle, 1)
            with pytest.raises(IndexError):
                arena_blob(arena.handle, -1)
            detach_all()

    def test_pickled_objects_roundtrip_through_an_arena(self):
        shards = [[("job", i, list(range(i)))] for i in range(4)]
        blobs = [pickle.dumps(s, protocol=4) for s in shards]
        with BytesArena(blobs) as arena:
            for i, shard in enumerate(shards):
                assert pickle.loads(arena_blob(arena.handle, i)) == shard
            detach_all()


def _sum_attached(payload) -> float:
    handle, lo, hi = payload
    return float(attach(handle)[lo:hi].sum())


def _unpickle_blob(payload):
    handle, index = payload
    return pickle.loads(arena_blob(handle, index))


class TestCrossProcess:
    @pytest.fixture
    def force_pools(self, monkeypatch):
        monkeypatch.setenv(FORCE_ENV, "1")

    def test_workers_read_a_published_array(self, force_pools):
        pool = WorkerPool()
        data = np.arange(1000, dtype=np.float64)
        try:
            with ShmArray(data) as pub:
                jobs = [(pub.handle, i * 250, (i + 1) * 250) for i in range(4)]
                sums = pmap(
                    _sum_attached, jobs, workers=2, chunksize=1, pool=pool
                )
            assert sums == [float(data[i * 250 : (i + 1) * 250].sum()) for i in range(4)]
        finally:
            pool.shutdown()

    def test_workers_extract_their_own_arena_blob(self, force_pools):
        pool = WorkerPool()
        shards = [{"shard": i, "rows": list(range(i * 3))} for i in range(4)]
        try:
            with BytesArena([pickle.dumps(s, protocol=4) for s in shards]) as arena:
                out = pmap(
                    _unpickle_blob,
                    [(arena.handle, i) for i in range(4)],
                    workers=2,
                    chunksize=1,
                    pool=pool,
                )
            assert out == shards
        finally:
            pool.shutdown()
