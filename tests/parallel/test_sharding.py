"""Tests for the deterministic sharding contract."""

import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.parallel import (
    DEFAULT_N_SHARDS,
    shard_items,
    shard_of,
    stable_hash,
)

_REPO_ROOT = Path(__file__).resolve().parents[2]


class TestStableHash:
    def test_pure_function_of_the_key(self):
        assert stable_hash("template:tpl-007") == stable_hash("template:tpl-007")
        assert stable_hash("a") != stable_hash("b")

    def test_distinct_keys_spread(self):
        assert len({stable_hash(f"key{i}") for i in range(200)}) == 200

    def test_stable_across_interpreters_and_hash_seeds(self):
        # ``hash(str)`` would differ between these children; blake2b
        # must not — shard membership has to agree across processes.
        script = (
            "from repro.parallel import stable_hash; "
            "print(stable_hash('template:tpl-007'))"
        )
        seen = set()
        for seed in ("0", "1", "12345"):
            env = dict(
                os.environ,
                PYTHONHASHSEED=seed,
                PYTHONPATH=str(_REPO_ROOT / "src"),
            )
            out = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            ).stdout.strip()
            seen.add(out)
        assert seen == {str(stable_hash("template:tpl-007"))}


class TestShardOf:
    def test_in_range(self):
        for i in range(50):
            assert 0 <= shard_of(f"k{i}", 7) < 7

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            shard_of("x", 0)
        with pytest.raises(ValueError):
            shard_items(["x"], key=str, n_shards=0)


_KEYS = st.lists(st.text(max_size=8), max_size=60)


class TestShardItems:
    @given(_KEYS, st.integers(1, 32))
    def test_shards_partition_the_input(self, keys, n_shards):
        items = list(enumerate(keys))
        shards = shard_items(items, key=lambda it: it[1], n_shards=n_shards)
        assert len(shards) == n_shards
        assert sorted(x for shard in shards for x in shard) == sorted(items)
        for index, shard in enumerate(shards):
            assert all(shard_of(key, n_shards) == index for _, key in shard)

    @given(_KEYS, st.integers(1, 32))
    def test_input_order_preserved_within_each_shard(self, keys, n_shards):
        items = list(enumerate(keys))
        for shard in shard_items(items, key=lambda it: it[1], n_shards=n_shards):
            positions = [position for position, _ in shard]
            assert positions == sorted(positions)

    @given(_KEYS)
    def test_membership_independent_of_other_items(self, keys):
        # An item's shard is a function of its key alone: sharding a
        # subset assigns every surviving item to the same shard index.
        items = list(enumerate(keys))
        full = shard_items(items, key=lambda it: it[1], n_shards=8)
        subset = items[::2]
        partial = shard_items(subset, key=lambda it: it[1], n_shards=8)
        for index, shard in enumerate(partial):
            assert all(item in full[index] for item in shard)

    def test_default_shard_count_is_fixed(self):
        assert DEFAULT_N_SHARDS == 16
        assert len(shard_items([], key=str)) == DEFAULT_N_SHARDS
