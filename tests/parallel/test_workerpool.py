"""Lifecycle tests for the persistent WorkerPool (lazy, warm, re-armed)."""

import os

import pytest

from repro.parallel import (
    FORCE_ENV,
    GranularityTuner,
    WorkerPool,
    get_pool,
    pmap,
    shutdown_pool,
)


def _pid_of(_: object) -> int:
    return os.getpid()


def _double(x: int) -> int:
    return x * 2


@pytest.fixture
def force_pools(monkeypatch):
    monkeypatch.setenv(FORCE_ENV, "1")


@pytest.fixture
def pool():
    p = WorkerPool()
    yield p
    p.shutdown()


class TestLazyStart:
    def test_construction_starts_nothing(self, pool):
        assert not pool.started
        assert pool.width == 0
        assert pool.generation == 0

    def test_first_dispatch_starts_the_pool(self, pool, force_pools):
        assert pmap(_double, [1, 2, 3, 4], workers=2, chunksize=1, pool=pool) == [
            2,
            4,
            6,
            8,
        ]
        assert pool.started
        assert pool.width == 2
        assert pool.generation == 1
        assert pool.spawn_seconds > 0.0

    def test_serial_calls_never_start_the_pool(self, pool, monkeypatch):
        # Without the force env, pytest resolves to serial: cold pool.
        monkeypatch.delenv(FORCE_ENV, raising=False)
        assert pmap(_double, list(range(8)), workers=4, pool=pool) == [
            x * 2 for x in range(8)
        ]
        assert not pool.started


class TestWarmReuse:
    def test_dispatches_reuse_the_same_workers(self, pool, force_pools):
        first = set(pmap(_pid_of, range(8), workers=2, chunksize=1, pool=pool))
        second = set(pmap(_pid_of, range(8), workers=2, chunksize=1, pool=pool))
        # Same pool, so across both dispatches at most ``width`` distinct
        # worker processes ever existed (a fresh pool would double that).
        assert len(first | second) <= pool.width
        assert os.getpid() not in first | second
        assert pool.generation == 1
        assert pool.dispatches == 2
        assert pool.items_dispatched == 16

    def test_growing_restarts_wider_and_sticks(self, pool, force_pools):
        pool.ensure(2)
        assert (pool.width, pool.generation) == (2, 1)
        pool.ensure(4)
        assert (pool.width, pool.generation) == (4, 2)
        # Asking for less never shrinks (high-water width persists).
        pool.ensure(2)
        assert (pool.width, pool.generation) == (4, 2)


class TestShutdown:
    def test_shutdown_then_rearm(self, pool, force_pools):
        pmap(_double, [1, 2], workers=2, chunksize=1, pool=pool)
        pool.shutdown()
        assert not pool.started
        # The next dispatch transparently re-arms a fresh pool.
        assert pmap(_double, [3, 4], workers=2, chunksize=1, pool=pool) == [6, 8]
        assert pool.started
        assert pool.generation == 2

    def test_shutdown_is_idempotent(self, pool):
        pool.shutdown()
        pool.shutdown()
        assert not pool.started


class TestSharedPool:
    def test_get_pool_returns_one_handle(self):
        assert get_pool() is get_pool()

    def test_shutdown_pool_leaves_handle_reusable(self, force_pools):
        shared = get_pool()
        pmap(_double, [1, 2], workers=2, chunksize=1)
        assert shared.started
        shutdown_pool()
        assert not shared.started
        assert get_pool() is shared

    def test_shutdown_pool_without_start_is_a_noop(self):
        shutdown_pool()
        shutdown_pool()


class TestStats:
    def test_stats_shape(self, pool, force_pools):
        pmap(_double, [1, 2, 3], workers=2, chunksize=1, pool=pool)
        stats = pool.stats()
        assert stats["started"] is True
        assert stats["width"] == 2
        assert stats["generation"] == 1
        assert stats["dispatches"] == 1
        assert stats["items_dispatched"] == 3
        assert stats["spawn_seconds"] > 0.0


class TestObsWiring:
    def test_pool_lifecycle_events_land_in_obs(self, pool, force_pools):
        from repro.obs import ObservabilityRuntime

        obs = ObservabilityRuntime()
        pool.bind(obs)
        pmap(_double, [1, 2, 3, 4], workers=2, chunksize=1, pool=pool)
        pool.shutdown()
        kinds = [e.kind for e in obs.events.events if e.layer == "parallel"]
        assert "pool_start" in kinds
        assert "pool_shutdown" in kinds
        names = [s.name for s in obs.tracer.spans]
        assert "parallel.dispatch" in names

    def test_fresh_tuner_keeps_dispatch_parallel(self, pool, force_pools):
        # Explicit tuner injection: unknown functions explore in parallel.
        tuner = GranularityTuner()
        pids = pmap(
            _pid_of, range(8), workers=2, pool=pool, tuner=tuner, chunksize=1
        )
        assert os.getpid() not in set(pids)
